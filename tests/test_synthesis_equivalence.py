"""Tests for equivalent-plan detection and deduplication (Appendix B)."""

from __future__ import annotations

from repro.dsl.ast import AtomicPlan, ConstStr, Extract
from repro.patterns.parse import parse_pattern
from repro.synthesis.equivalence import deduplicate_plans, plans_equivalent


SOURCE = parse_pattern("<D>2'/'<D>2")


class TestPlansEquivalent:
    def test_paper_appendix_b_example(self):
        """Extract(3),Const('/'),Extract(1) == Extract(3),Extract(2),Extract(1)."""
        first = AtomicPlan((Extract(3), ConstStr("/"), Extract(1)))
        second = AtomicPlan((Extract(3), Extract(2), Extract(1)))
        assert plans_equivalent(first, second, SOURCE)

    def test_identical_plans_are_equivalent(self):
        plan = AtomicPlan((Extract(1, 3),))
        assert plans_equivalent(plan, plan, SOURCE)

    def test_range_extract_equivalent_to_split_extracts(self):
        combined = AtomicPlan((Extract(1, 3),))
        split = AtomicPlan((Extract(1), Extract(2), Extract(3)))
        assert plans_equivalent(combined, split, SOURCE)

    def test_different_extractions_not_equivalent(self):
        first = AtomicPlan((Extract(1),))
        second = AtomicPlan((Extract(3),))
        assert not plans_equivalent(first, second, SOURCE)

    def test_const_differs_from_non_constant_extract(self):
        # Extract(1) pulls a digit field, ConstStr('42') is a constant: the
        # results differ on most strings, so the plans are not equivalent.
        first = AtomicPlan((Extract(1),))
        second = AtomicPlan((ConstStr("42"),))
        assert not plans_equivalent(first, second, SOURCE)

    def test_const_matching_literal_source_token_is_equivalent(self):
        first = AtomicPlan((Extract(2),))
        second = AtomicPlan((ConstStr("/"),))
        assert plans_equivalent(first, second, SOURCE)

    def test_different_lengths_not_equivalent(self):
        first = AtomicPlan((Extract(1),))
        second = AtomicPlan((Extract(1), ConstStr("x")))
        assert not plans_equivalent(first, second, SOURCE)

    def test_equivalence_is_symmetric(self):
        first = AtomicPlan((Extract(3), ConstStr("/"), Extract(1)))
        second = AtomicPlan((Extract(3), Extract(2), Extract(1)))
        assert plans_equivalent(second, first, SOURCE)


class TestDeduplicatePlans:
    def test_keeps_first_representative(self):
        plans = [
            AtomicPlan((Extract(1, 3),)),
            AtomicPlan((Extract(1), Extract(2), Extract(3))),
            AtomicPlan((Extract(1), ConstStr("/"), Extract(3))),
            AtomicPlan((Extract(3),)),
        ]
        deduped = deduplicate_plans(plans, SOURCE)
        assert deduped[0] == plans[0]
        assert AtomicPlan((Extract(3),)) in deduped
        assert len(deduped) == 2

    def test_no_duplicates_is_identity(self):
        plans = [AtomicPlan((Extract(1),)), AtomicPlan((Extract(3),))]
        assert deduplicate_plans(plans, SOURCE) == plans

    def test_empty_input(self):
        assert deduplicate_plans([], SOURCE) == []
