"""Serialization round-trip over the full 47-task benchmark suite.

The acceptance bar for the engine split: for every program the
synthesizer produces across the paper's benchmark suite,
``CompiledProgram.loads(p.dumps()).run(values)`` must equal the
session's own ``transform()`` output — i.e. a program that crossed a
JSON boundary behaves identically to the one still living inside the
session that synthesized it.
"""

from __future__ import annotations

import pytest

from repro.bench.suite import benchmark_suite
from repro.core.session import CLXSession
from repro.engine.compiled import CompiledProgram
from repro.util.errors import SynthesisError

TASKS = benchmark_suite()


def _session_for(task):
    session = CLXSession(task.inputs)
    session.label_target(task.target_pattern())
    return session


@pytest.mark.parametrize("task", TASKS, ids=[task.task_id for task in TASKS])
def test_round_trip_program_matches_session_transform(task):
    session = _session_for(task)
    try:
        report = session.transform()
    except SynthesisError:
        pytest.skip(f"{task.task_id}: no program synthesizable without repair")
    compiled = session.compile(metadata={"task": task.task_id})
    revived = CompiledProgram.loads(compiled.dumps())
    assert revived == compiled
    assert revived.metadata == {"task": task.task_id}
    round_tripped = revived.run(task.inputs)
    assert round_tripped.outputs == report.outputs
    assert round_tripped.matched_pattern == report.matched_pattern


def test_suite_is_the_paper_suite():
    assert len(TASKS) == 47
