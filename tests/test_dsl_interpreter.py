"""Tests for the UniFi interpreter."""

from __future__ import annotations

import pytest

from repro.dsl.ast import AtomicPlan, Branch, ConstStr, Extract, UniFiProgram
from repro.dsl.interpreter import apply_plan, apply_program, transform_all
from repro.patterns.parse import parse_pattern
from repro.util.errors import TransformError


class TestApplyPlan:
    def test_extract_and_const(self):
        # Source "734.236.3466" tokens: 734 . 236 . 3466
        plan = AtomicPlan(
            (
                ConstStr("("), Extract(1), ConstStr(")"), ConstStr(" "),
                Extract(3), ConstStr("-"), Extract(5),
            )
        )
        assert apply_plan(plan, ["734", ".", "236", ".", "3466"]) == "(734) 236-3466"

    def test_range_extract(self):
        plan = AtomicPlan((Extract(1, 3),))
        assert apply_plan(plan, ["a", "-", "b"]) == "a-b"

    def test_empty_plan_produces_empty_string(self):
        assert apply_plan(AtomicPlan(()), ["x"]) == ""

    def test_out_of_range_extract_raises(self):
        plan = AtomicPlan((Extract(4),))
        with pytest.raises(TransformError):
            apply_plan(plan, ["a", "b"])


class TestApplyProgram:
    def _program(self):
        dots = Branch(
            parse_pattern("<D>3'.'<D>3'.'<D>4"),
            AtomicPlan((Extract(1), ConstStr("-"), Extract(3), ConstStr("-"), Extract(5))),
        )
        return UniFiProgram((dots,))

    def test_matching_branch_applies(self):
        outcome = apply_program(self._program(), "734.236.3466")
        assert outcome.matched
        assert outcome.output == "734-236-3466"
        assert outcome.pattern is not None

    def test_unmatched_value_flagged_and_unchanged(self):
        outcome = apply_program(self._program(), "N/A")
        assert not outcome.matched
        assert outcome.output == "N/A"
        assert outcome.pattern is None

    def test_first_matching_branch_wins(self):
        specific = Branch(parse_pattern("<D>2"), AtomicPlan((ConstStr("specific"),)))
        general = Branch(parse_pattern("<D>+"), AtomicPlan((ConstStr("general"),)))
        program = UniFiProgram((specific, general))
        assert apply_program(program, "12").output == "specific"
        assert apply_program(program, "123").output == "general"

    def test_transform_all_preserves_order(self):
        program = self._program()
        outcomes = transform_all(program, ["734.236.3466", "N/A"])
        assert [o.output for o in outcomes] == ["734-236-3466", "N/A"]


class TestPaperExample5Program:
    """The exact UniFi program printed in the paper for Example 5."""

    def _program(self):
        return UniFiProgram(
            (
                Branch(
                    parse_pattern("'['<U>+'-'<D>+"),
                    AtomicPlan((Extract(1, 4), ConstStr("]"))),
                ),
                Branch(
                    parse_pattern("<U>+'-'<D>+"),
                    AtomicPlan((ConstStr("["), Extract(1, 3), ConstStr("]"))),
                ),
                Branch(
                    parse_pattern("<U>+<D>+"),
                    AtomicPlan(
                        (ConstStr("["), Extract(1), ConstStr("-"), Extract(2), ConstStr("]"))
                    ),
                ),
            )
        )

    @pytest.mark.parametrize(
        "raw, desired",
        [
            ("CPT-00350", "[CPT-00350]"),
            ("[CPT-00340", "[CPT-00340]"),
            ("CPT115", "[CPT-115]"),
        ],
    )
    def test_table_3_rows(self, raw, desired):
        assert apply_program(self._program(), raw).output == desired
