"""Tests for constant-token discovery ("Find Constant Tokens", Section 4.1)."""

from __future__ import annotations

import pytest

from repro.tokens.constants import (
    constant_positions,
    discover_constant_tokens,
    promote_constants,
)
from repro.tokens.tokenizer import tokenize, tokenize_all


def _cluster(values):
    return values, tokenize_all(values)


class TestDiscovery:
    def test_shared_prefix_is_promoted(self):
        values, tokenizations = _cluster(
            ["Dr. Adams", "Dr. Brown", "Dr. Clark", "Dr. Davis"]
        )
        constants = discover_constant_tokens(values, tokenizations)
        # 'D' and 'r' positions are constant; the varying surname is not.
        assert 0 in constants and constants[0] == "D"
        assert 1 in constants and constants[1] == "r"
        assert max(constants) < 4  # surname tokens not promoted

    def test_digit_values_never_promoted(self):
        values, tokenizations = _cluster(["734-111", "734-222", "734-333"])
        constants = discover_constant_tokens(values, tokenizations)
        assert constants == {}

    def test_small_clusters_not_promoted(self):
        values, tokenizations = _cluster(["Dr. Adams", "Dr. Brown"])
        assert discover_constant_tokens(values, tokenizations, min_rows=3) == {}

    def test_threshold_controls_promotion(self):
        values, tokenizations = _cluster(
            ["Mr. Adams", "Mr. Brown", "Mr. Clark", "Ms. Davis"]
        )
        strict = discover_constant_tokens(values, tokenizations, threshold=1.0)
        lenient = discover_constant_tokens(values, tokenizations, threshold=0.7)
        assert 1 not in strict  # 'r' vs 's' varies
        assert 1 in lenient

    def test_empty_input(self):
        assert discover_constant_tokens([], []) == {}

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            discover_constant_tokens(["abc", "abd", "abe"], [tokenize("abc")])

    def test_invalid_threshold_raises(self):
        values, tokenizations = _cluster(["abc", "abd", "abe"])
        with pytest.raises(ValueError):
            discover_constant_tokens(values, tokenizations, threshold=0.0)

    def test_inconsistent_tokenization_length_raises(self):
        with pytest.raises(ValueError):
            discover_constant_tokens(
                ["ab", "a-b", "xy"], [tokenize("ab"), tokenize("a-b"), tokenize("xy")]
            )


class TestPromotion:
    def test_promote_constants_replaces_positions(self):
        tokens = tokenize("Dr. Adams")
        promoted = promote_constants(tokens, {0: "D", 1: "r"})
        assert promoted[0].is_literal and promoted[0].literal == "D"
        assert promoted[1].is_literal and promoted[1].literal == "r"
        assert not promoted[4].is_literal

    def test_promote_constants_ignores_existing_literals(self):
        tokens = tokenize("a-b")
        promoted = promote_constants(tokens, {1: "-"})
        assert promoted == tokens

    def test_constant_positions_helper(self):
        tokens = tokenize("a-b")
        assert constant_positions(tokens) == (1,)
