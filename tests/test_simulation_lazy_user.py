"""Tests for the lazy-user simulation of Section 7.4."""

from __future__ import annotations

import pytest

from repro.bench.scenarios import blinkfill_tasks, flashfill_tasks
from repro.simulation.lazy_user import (
    simulate_all,
    simulate_clx,
    simulate_flashfill,
    simulate_regex_replace,
)


@pytest.fixture(scope="module")
def medical_task():
    return next(t for t in blinkfill_tasks() if t.task_id == "blinkfill-medical-codes")


@pytest.fixture(scope="module")
def conditional_task():
    return next(t for t in flashfill_tasks() if t.task_id == "flashfill-conditional")


@pytest.fixture(scope="module")
def phone_task():
    return next(t for t in flashfill_tasks() if t.task_id == "flashfill-phone")


class TestSimulateCLX:
    def test_perfect_on_medical_codes(self, medical_task):
        run = simulate_clx(medical_task)
        assert run.system == "CLX"
        assert run.perfect
        assert run.steps.selections == 1
        assert run.steps.punishment == 0
        assert run.outputs == [medical_task.desired_output(v) for v in medical_task.inputs]

    def test_interactions_count_labeling_plus_branches(self, phone_task):
        run = simulate_clx(phone_task)
        assert run.interactions >= 1 + 1  # labeling + at least one plan

    def test_imperfect_on_content_conditional(self, conditional_task):
        run = simulate_clx(conditional_task)
        assert not run.perfect
        assert run.steps.punishment > 0


class TestSimulateFlashFill:
    def test_examples_bounded_by_formats(self, phone_task):
        run = simulate_flashfill(phone_task)
        assert run.perfect
        assert run.steps.examples <= len(phone_task.distinct_leaf_patterns()) + 1

    def test_gives_up_on_content_conditional(self, conditional_task):
        run = simulate_flashfill(conditional_task)
        assert not run.perfect
        assert run.steps.punishment > 0

    def test_max_examples_cap(self, phone_task):
        run = simulate_flashfill(phone_task, max_examples=1)
        assert run.steps.examples <= 1


class TestSimulateRegexReplace:
    def test_rules_cost_two_steps_each(self, medical_task):
        run = simulate_regex_replace(medical_task)
        assert run.steps.rules >= 1
        assert run.steps.specification == 2 * run.steps.rules

    def test_perfect_on_phone_task(self, phone_task):
        run = simulate_regex_replace(phone_task)
        assert run.perfect


class TestSimulateAll:
    def test_returns_all_three_systems(self, medical_task):
        runs = simulate_all(medical_task)
        assert set(runs) == {"CLX", "FlashFill", "RegexReplace"}
        for name, run in runs.items():
            assert run.system == name
            assert run.task_id == medical_task.task_id

    def test_outputs_length_matches_input(self, medical_task):
        runs = simulate_all(medical_task)
        for run in runs.values():
            assert len(run.outputs) == medical_task.size
