"""Tests for the RegexReplace (Trifacta-style manual replace) baseline."""

from __future__ import annotations

import pytest

from repro.baselines.regex_replace import RegexReplaceSession, RegexRule
from repro.dsl.replace import ReplaceOperation
from repro.util.errors import ValidationError


class TestRegexRule:
    def test_rule_as_operation_applies(self):
        rule = RegexRule(regex=r"^([0-9]{3})\.([0-9]{3})\.([0-9]{4})$", replacement="$1-$2-$3")
        assert rule.as_operation().apply("734.236.3466") == "734-236-3466"

    def test_matches(self):
        rule = RegexRule(regex=r"^[0-9]+$", replacement="x")
        assert rule.matches("123")
        assert not rule.matches("abc")


class TestSession:
    def test_requires_data(self):
        with pytest.raises(ValidationError):
            RegexReplaceSession([])

    def test_invalid_regex_rejected(self):
        session = RegexReplaceSession(["x"])
        with pytest.raises(ValidationError):
            session.add_rule("([0-9]", "x")
        assert session.rule_count == 0

    def test_rules_apply_in_order(self):
        session = RegexReplaceSession(["734.236.3466", "(734) 645-8397", "N/A"])
        session.add_rule(r"^([0-9]{3})\.([0-9]{3})\.([0-9]{4})$", "$1-$2-$3")
        session.add_rule(r"^\(([0-9]{3})\) ([0-9]{3})-([0-9]{4})$", "$1-$2-$3")
        assert session.outputs() == ["734-236-3466", "734-645-8397", "N/A"]

    def test_later_rules_see_earlier_rewrites(self):
        session = RegexReplaceSession(["abc"])
        session.add_rule(r"^abc$", "def")
        session.add_rule(r"^def$", "ghi")
        assert session.outputs() == ["ghi"]

    def test_add_operation_from_replace(self):
        session = RegexReplaceSession(["12"])
        operation = ReplaceOperation(regex=r"^([0-9]+)$", replacement="n$1")
        session.add_operation(operation)
        assert session.outputs() == ["n12"]

    def test_failing_rows_and_completion(self):
        expected = {"734.236.3466": "734-236-3466", "N/A": "N/A"}
        session = RegexReplaceSession(list(expected))
        assert session.failing_rows(expected) == ["734.236.3466"]
        session.add_rule(r"^([0-9]{3})\.([0-9]{3})\.([0-9]{4})$", "$1-$2-$3")
        assert session.is_complete(expected)

    def test_failing_rows_against_pattern(self, phone_target):
        session = RegexReplaceSession(["734.236.3466"])
        assert session.failing_rows_against_pattern(phone_target) == ["734.236.3466"]
        session.add_rule(r"^([0-9]{3})\.([0-9]{3})\.([0-9]{4})$", "$1-$2-$3")
        assert session.failing_rows_against_pattern(phone_target) == []

    def test_rules_property_is_copy(self):
        session = RegexReplaceSession(["x"])
        session.add_rule("^x$", "y")
        rules = session.rules
        rules.clear()
        assert session.rule_count == 1
