"""Tests for the content-guard (advanced conditionals) extension."""

from __future__ import annotations

import pytest

from repro.core.session import CLXSession
from repro.dsl.ast import AtomicPlan, Branch, ConstStr, Extract, UniFiProgram
from repro.dsl.explain import explain_branch
from repro.dsl.guards import ContainsGuard
from repro.dsl.interpreter import apply_program
from repro.patterns.parse import parse_pattern
from repro.util.errors import ValidationError


class TestContainsGuard:
    def test_holds_case_sensitive(self):
        guard = ContainsGuard("picture")
        assert guard.holds("report.picture.pdf")
        assert not guard.holds("report.Picture.pdf")
        assert not guard.holds("report.invoice.pdf")

    def test_holds_case_insensitive(self):
        guard = ContainsGuard("picture", case_sensitive=False)
        assert guard.holds("report.PICTURE.pdf")

    def test_empty_keyword_rejected(self):
        with pytest.raises(ValueError):
            ContainsGuard("")

    def test_describe_and_str(self):
        guard = ContainsGuard("picture")
        assert "picture" in guard.describe()
        assert "picture" in str(guard)


class TestGuardedBranches:
    def _program(self):
        pattern = parse_pattern("<L>+'.'<L>+'.'<L>+")
        keep_keyword = AtomicPlan((Extract(3),))
        keep_extension = AtomicPlan((Extract(5),))
        return UniFiProgram(
            (
                Branch(pattern=pattern, plan=keep_keyword, guard=ContainsGuard("picture")),
                Branch(pattern=pattern, plan=keep_extension),
            )
        )

    def test_guarded_branch_fires_only_on_matching_content(self):
        program = self._program()
        assert apply_program(program, "abc.picture.pdf").output == "picture"
        assert apply_program(program, "abc.invoice.pdf").output == "pdf"

    def test_guard_does_not_widen_pattern(self):
        program = self._program()
        outcome = apply_program(program, "picture")
        assert not outcome.matched

    def test_explained_operation_respects_guard(self):
        branch = self._program().branches[0]
        operation = explain_branch(branch)
        assert operation.matches("abc.picture.pdf")
        assert not operation.matches("abc.invoice.pdf")
        assert operation.apply("abc.picture.pdf") == "picture"
        assert "contains 'picture'" in operation.description

    def test_unguarded_branch_str_unchanged(self):
        branch = Branch(parse_pattern("<D>2"), AtomicPlan((ConstStr("x"),)))
        assert "and" not in str(branch)
        guarded = Branch(parse_pattern("<D>2"), AtomicPlan((ConstStr("x"),)), guard=ContainsGuard("1"))
        assert "Contains" in str(guarded)


class TestConditionalRepairInSession:
    """The Example-13-style task becomes solvable with a conditional repair."""

    ROWS = [
        "alpha.picture.pdf",
        "bravo.invoice.pdf",
        "carol.report.pdf",
        "delta.picture.pdf",
        "echos.summary.pdf",
    ]
    DESIRED = {
        "alpha.picture.pdf": "picture",
        "bravo.invoice.pdf": "pdf",
        "carol.report.pdf": "pdf",
        "delta.picture.pdf": "picture",
        "echos.summary.pdf": "pdf",
    }

    def test_conditional_repair_fixes_content_dependent_task(self):
        session = CLXSession(self.ROWS)
        session.label_target_from_notation("<L>+")
        source = list(session.program)[0].pattern

        keep_keyword = AtomicPlan((Extract(3),))
        keep_extension = AtomicPlan((Extract(5),))
        session.apply_conditional_repair(
            source,
            [(ContainsGuard("picture"), keep_keyword)],
            default_plan=keep_extension,
        )

        report = session.transform()
        outputs = dict(report.pairs())
        for raw, desired in self.DESIRED.items():
            assert outputs[raw] == desired

    def test_conditional_repair_requires_known_source(self):
        session = CLXSession(self.ROWS)
        session.label_target_from_notation("<L>+")
        with pytest.raises(ValidationError):
            session.apply_conditional_repair(
                parse_pattern("<D>9"), [(ContainsGuard("x"), AtomicPlan((Extract(1),)))]
            )

    def test_conditional_repair_requires_guarded_plans(self):
        session = CLXSession(self.ROWS)
        session.label_target_from_notation("<L>+")
        source = list(session.program)[0].pattern
        with pytest.raises(ValidationError):
            session.apply_conditional_repair(source, [])
