"""Tests for the end-to-end CLXSession API."""

from __future__ import annotations

import pytest

from repro.core.session import CLXSession
from repro.dsl.replace import ReplaceOperation
from repro.patterns.parse import parse_pattern
from repro.util.errors import ValidationError


class TestClusterPhase:
    def test_summary_sorted_by_cluster_size(self, small_phone_column):
        raw, _expected = small_phone_column
        session = CLXSession(raw)
        counts = [summary.count for summary in session.pattern_summary()]
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == len(raw)

    def test_summary_contains_samples(self, phone_values):
        session = CLXSession(phone_values)
        for summary in session.pattern_summary():
            assert summary.samples
            assert all(isinstance(sample, str) for sample in summary.samples)

    def test_empty_input_rejected(self):
        with pytest.raises(ValidationError):
            CLXSession([])

    def test_values_property_is_a_copy(self, phone_values):
        session = CLXSession(phone_values)
        values = session.values
        values.append("junk")
        assert len(session.values) == len(phone_values)


class TestLabelPhase:
    def test_label_from_string(self, phone_values):
        session = CLXSession(phone_values)
        target = session.label_target_from_string("(734) 645-8397")
        assert target.notation() == "'('<D>3')'' '<D>3'-'<D>4"
        assert session.target == target

    def test_label_from_string_generalized(self, medical_codes):
        session = CLXSession(medical_codes)
        target = session.label_target_from_string("[CPT-11536]", generalize=1)
        assert target.notation() == "'['<U>+'-'<D>+']'"

    def test_label_from_notation(self, phone_values):
        session = CLXSession(phone_values)
        target = session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        assert target == parse_pattern("<D>3'-'<D>3'-'<D>4")

    def test_relabel_resets_synthesis(self, phone_values):
        session = CLXSession(phone_values)
        session.label_target_from_string("(734) 645-8397")
        first = session.program
        session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        assert session.program is not first

    def test_synthesize_without_target_raises(self, phone_values):
        session = CLXSession(phone_values)
        with pytest.raises(ValidationError):
            session.synthesize()


class TestTransformPhase:
    def test_motivating_example(self, phone_values):
        """The Section 2 scenario: unify phone numbers to (xxx) xxx-xxxx."""
        session = CLXSession(phone_values)
        session.label_target_from_string("(734) 645-8397")
        report = session.transform()
        assert report.outputs[:4] == [
            "(734) 645-8397",
            "(734) 586-7252",
            "(734) 422-8073",
            "(734) 236-3466",
        ]
        # The bare-digit and N/A rows cannot be transformed and are flagged.
        assert "7342363466" in report.flagged

    def test_explain_returns_executable_operations(self, phone_values):
        session = CLXSession(phone_values)
        session.label_target_from_string("(734) 645-8397")
        operations = session.explain()
        assert operations
        assert all(isinstance(op, ReplaceOperation) for op in operations)
        assert any(op.matches("734-422-8073") for op in operations)

    def test_transformed_summary_collapses_patterns(self, small_phone_column):
        """After transformation the pattern list shrinks (Figure 2 vs 3)."""
        raw, _expected = small_phone_column
        session = CLXSession(raw)
        before = len(session.pattern_summary())
        session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        after = len(session.transformed_summary())
        assert after < before
        assert after == 1

    def test_preview_rows_cover_each_source_pattern(self, phone_values):
        session = CLXSession(phone_values)
        session.label_target_from_string("(734) 645-8397")
        preview = session.preview(per_pattern=1)
        assert len(preview) >= len(session.program)

    def test_program_cached_between_calls(self, phone_values):
        session = CLXSession(phone_values)
        session.label_target_from_string("(734) 645-8397")
        assert session.program is session.program

    def test_describe_mentions_state(self, phone_values):
        session = CLXSession(phone_values)
        session.label_target_from_string("(734) 645-8397")
        session.synthesize()
        text = session.describe()
        assert "rows: 7" in text
        assert "target:" in text

    def test_interaction_counts(self, phone_values):
        session = CLXSession(phone_values)
        counts = session.interaction_counts()
        assert counts["patterns"] == len(session.pattern_summary())
        assert counts["branches"] == 0
        session.label_target_from_string("(734) 645-8397")
        counts = session.interaction_counts()
        assert counts["branches"] == len(session.program)


class TestRepairPhase:
    def test_repair_candidates_and_apply(self, employee_names):
        session = CLXSession(employee_names + ["Yahav, E."])
        session.label_target_from_string("Fisher, K.", generalize=1)
        branch = list(session.program)[0]
        candidates = session.repair_candidates(branch.pattern)
        assert candidates.default == branch.plan
        if candidates.alternatives:
            updated = session.apply_repair(branch.pattern, candidates.alternatives[0])
            assert updated.branch_for(branch.pattern).plan == candidates.alternatives[0]


class TestExecutionFacade:
    """The session delegates execution to repro.engine and caches the report."""

    def _labelled(self, phone_values):
        session = CLXSession(phone_values)
        session.label_target_from_string("(734) 645-8397")
        return session

    def test_transform_report_is_cached(self, phone_values):
        session = self._labelled(phone_values)
        assert session.transform() is session.transform()

    def test_preview_and_summary_share_the_cached_run(self, phone_values):
        session = self._labelled(phone_values)
        report = session.transform()
        session.preview()
        session.transformed_summary()
        assert session.transform() is report

    def test_engine_is_cached(self, phone_values):
        session = self._labelled(phone_values)
        assert session.engine() is session.engine()

    def test_relabel_invalidates_cache(self, phone_values):
        session = self._labelled(phone_values)
        first = session.transform()
        engine = session.engine()
        session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        assert session.transform() is not first
        assert session.engine() is not engine
        assert session.transform().outputs != first.outputs

    def test_apply_repair_invalidates_cache(self, employee_names):
        session = CLXSession(employee_names + ["Yahav, E."])
        session.label_target_from_string("Fisher, K.", generalize=1)
        first = session.transform()
        branch = list(session.program)[0]
        candidates = session.repair_candidates(branch.pattern)
        if not candidates.alternatives:
            pytest.skip("no repair alternatives for this dataset")
        session.apply_repair(branch.pattern, candidates.alternatives[0])
        second = session.transform()
        assert second is not first

    def test_conditional_repair_invalidates_cache(self, phone_values):
        from repro.dsl.guards import ContainsGuard

        session = self._labelled(phone_values)
        first = session.transform()
        branch = list(session.program)[0]
        session.apply_conditional_repair(
            branch.pattern, [(ContainsGuard("734"), branch.plan)]
        )
        assert session.transform() is not first

    def test_compile_exports_program_and_target(self, phone_values):
        session = self._labelled(phone_values)
        compiled = session.compile()
        assert compiled.program == session.program
        assert compiled.target == session.target
        assert compiled.run(phone_values).outputs == session.transform().outputs

    def test_compile_requires_a_target(self, phone_values):
        with pytest.raises(ValidationError):
            CLXSession(phone_values).compile()

    def test_transform_matches_engine_run(self, phone_values):
        session = self._labelled(phone_values)
        assert session.transform().outputs == session.engine().run(phone_values).outputs
