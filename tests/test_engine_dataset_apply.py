"""Tests for mixed-format dataset apply and cross-partition dispatch.

The tentpole contract: a :class:`Dataset` mixing CSV and JSONL
partitions applies end-to-end through one
:class:`~repro.engine.parallel.ShardedTableExecutor` — workers parse
each part in its own format and re-encode to the sink format — and
:meth:`~repro.engine.parallel.ShardedTableExecutor.run_dataset` keeps
shards of *different* partitions in flight together while the sink
bytes stay identical at any worker count and shard geometry.
"""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.bench.phone import phone_dataset
from repro.core.session import CLXSession
from repro.dataset import Dataset
from repro.engine.parallel import (
    DEFAULT_APPLY_SHARD_BYTES,
    ShardedTableExecutor,
    apply_dataset,
    partition_output_name,
)
from repro.util.errors import CLXError, ValidationError


@pytest.fixture(scope="module")
def phone_engine():
    raw, _ = phone_dataset(count=120, format_count=4, seed=13)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    return session.engine()


def _write_csv(path, header, rows):
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def _write_jsonl(path, rows):
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, ensure_ascii=False) + "\n")
    return path


@pytest.fixture
def mixed_dataset(tmp_path):
    """Three partitions — csv, jsonl, csv — over one (id, phone) column."""
    values, _ = phone_dataset(count=30, format_count=4, seed=5)
    _write_csv(
        tmp_path / "part-0.csv",
        ["id", "phone"],
        [[index, value] for index, value in enumerate(values[:10])],
    )
    _write_jsonl(
        tmp_path / "part-1.jsonl",
        [{"id": index + 10, "phone": value} for index, value in enumerate(values[10:20])],
    )
    _write_csv(
        tmp_path / "part-2.csv",
        ["id", "phone"],
        [[index + 20, value] for index, value in enumerate(values[20:])],
    )
    return Dataset.resolve(str(tmp_path / "part-*")), values


def _reference_csv(engine, values):
    """The serial single-stream oracle: header + one encoded row per value."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["id", "phone", "phone_transformed"])
    for index, value in enumerate(values):
        writer.writerow([index, value, engine.run_one(value).output])
    return buffer.getvalue()


class TestRunPart:
    def test_jsonl_part_parses_and_encodes_csv(self, phone_engine, tmp_path):
        path = _write_jsonl(
            tmp_path / "rows.jsonl",
            [{"id": 0, "phone": "906.555.1234"}, {"id": 1, "phone": "(906) 555-9999"}],
        )
        dataset = Dataset.resolve(str(path))
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], workers=1
        ) as executor:
            encoded = "".join(
                chunk for chunk, _, _, _ in executor.run_part(dataset.parts[0])
            )
        rows = list(csv.DictReader(io.StringIO(executor.header_text() + encoded)))
        assert [row["phone_transformed"] for row in rows] == [
            "906-555-1234",
            "906-555-9999",
        ]

    def test_jsonl_missing_key_and_null_become_empty(self, phone_engine, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"id": 0}\n{"id": 1, "phone": null}\n', encoding="utf-8")
        dataset = Dataset.resolve(str(path))
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], workers=1
        ) as executor:
            encoded = "".join(
                chunk for chunk, _, _, _ in executor.run_part(dataset.parts[0])
            )
        rows = list(csv.DictReader(io.StringIO(executor.header_text() + encoded)))
        assert [row["phone"] for row in rows] == ["", ""]

    def test_jsonl_pass_through_values_keep_their_json_form(
        self, phone_engine, tmp_path
    ):
        # Untouched columns must not be rewritten as Python reprs:
        # true stays JSON true, nested objects stay JSON.
        path = tmp_path / "rows.jsonl"
        path.write_text(
            '{"id": true, "phone": "906.555.1234"}\n'
            '{"id": {"a": 1}, "phone": "906.555.9999"}\n',
            encoding="utf-8",
        )
        dataset = Dataset.resolve(str(path))
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], out_format="jsonl", workers=1
        ) as executor:
            encoded = "".join(
                chunk for chunk, _, _, _ in executor.run_part(dataset.parts[0])
            )
        rows = [json.loads(line) for line in encoded.splitlines()]
        assert [row["id"] for row in rows] == ["true", '{"a": 1}']
        assert [row["phone_transformed"] for row in rows] == [
            "906-555-1234",
            "906-555-9999",
        ]

    def test_jsonl_unknown_key_names_file_and_line(self, phone_engine, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text(
            '{"id": 0, "phone": "x"}\n{"id": 1, "phone": "y", "fax": "z"}\n',
            encoding="utf-8",
        )
        dataset = Dataset.resolve(str(path))
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], workers=1
        ) as executor:
            with pytest.raises(CLXError, match=r"rows\.jsonl line 2.*'fax'"):
                list(executor.run_part(dataset.parts[0]))

    def test_jsonl_blank_lines_are_skipped_but_counted(self, phone_engine, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text(
            '{"id": 0, "phone": "906.555.1234"}\n\nnot json\n', encoding="utf-8"
        )
        dataset = Dataset.resolve(str(path))
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], workers=1
        ) as executor:
            with pytest.raises(CLXError, match=r"rows\.jsonl line 3"):
                list(executor.run_part(dataset.parts[0]))

    def test_bare_cr_cell_raises_clx_error_on_both_dispatch_paths(
        self, phone_engine, tmp_path
    ):
        # A bare "\r" in an unquoted cell is the csv module's error to
        # raise — but it must surface as a CLXError naming file and
        # line, identically through run_part and run_dataset (both
        # split physical lines on "\n" only).
        path = tmp_path / "bad.csv"
        path.write_bytes(b"id,phone\n1,906-555-0000\n2,41\r5.555.9999\n")
        dataset = Dataset.resolve(str(path))
        for run in (
            lambda ex: list(ex.run_part(dataset.parts[0])),
            lambda ex: list(ex.run_dataset(dataset)),
        ):
            with ShardedTableExecutor(
                {"phone": phone_engine}, ["id", "phone"], workers=1
            ) as executor:
                with pytest.raises(CLXError, match=r"bad\.csv line 3: invalid CSV"):
                    run(executor)

    def test_lone_cr_separators_fail_identically_on_profile_and_apply(
        self, phone_engine, tmp_path
    ):
        # Every JSONL reader splits lines on "\n" only; a lone-"\r"
        # separated file is malformed the same way on both halves of
        # the pipeline — never "profiles but cannot apply".
        path = tmp_path / "cr.jsonl"
        path.write_bytes(b'{"id": "1", "phone": "a"}\r{"id": "2", "phone": "b"}\r')
        dataset = Dataset.resolve(str(path))
        with pytest.raises(ValidationError, match=r"cr\.jsonl line 1"):
            list(dataset.iter_values("phone"))
        with pytest.raises(ValidationError, match=r"cr\.jsonl line 1"):
            dataset.header()
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], workers=1
        ) as executor:
            with pytest.raises(ValidationError, match=r"cr\.jsonl line 1"):
                list(executor.run_dataset(dataset))

    def test_rejects_unknown_input_format(self, phone_engine):
        with ShardedTableExecutor({"phone": phone_engine}, ["id", "phone"]) as executor:
            with pytest.raises(ValidationError, match="input format"):
                list(executor.run_chunks([], in_format="xml"))


class TestRunDataset:
    def test_matches_the_serial_single_stream_reference(
        self, phone_engine, mixed_dataset
    ):
        dataset, values = mixed_dataset
        expected = _reference_csv(phone_engine, values)
        for workers in (1, 2, 3):
            with ShardedTableExecutor(
                {"phone": phone_engine}, ["id", "phone"], workers=workers
            ) as executor:
                encoded = executor.header_text() + "".join(
                    chunk for _, (chunk, _, _, _) in executor.run_dataset(dataset)
                )
            assert encoded == expected, f"workers={workers}"

    def test_shard_geometry_never_changes_the_bytes(self, phone_engine, mixed_dataset):
        dataset, values = mixed_dataset
        expected = _reference_csv(phone_engine, values)
        for shard_bytes in (64, 257, DEFAULT_APPLY_SHARD_BYTES):
            with ShardedTableExecutor(
                {"phone": phone_engine}, ["id", "phone"], workers=2
            ) as executor:
                encoded = executor.header_text() + "".join(
                    chunk
                    for _, (chunk, _, _, _) in executor.run_dataset(
                        dataset, shard_bytes=shard_bytes
                    )
                )
            assert encoded == expected, f"shard_bytes={shard_bytes}"

    def test_chunk_size_bounds_rows_per_transform_batch(
        self, phone_engine, tmp_path, monkeypatch
    ):
        # A byte-planned shard must still transform in chunk_size-line
        # batches (the knob `--chunk-size` maps to), not all at once.
        import repro.engine.parallel as parallel_module

        _write_csv(
            tmp_path / "data.csv",
            ["id", "phone"],
            [[index, "906.555.1234"] for index in range(50)],
        )
        dataset = Dataset.resolve(str(tmp_path / "data.csv"))
        batch_sizes = []
        original = parallel_module._transform_lines

        def recording(spec, engines, first_line, lines, source=None, in_format="csv"):
            batch_sizes.append(len(lines))
            return original(spec, engines, first_line, lines, source, in_format)

        monkeypatch.setattr(parallel_module, "_transform_lines", recording)
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], workers=1, chunk_size=8
        ) as executor:
            list(executor.run_dataset(dataset))
        assert batch_sizes and max(batch_sizes) <= 8

    def test_part_indexes_arrive_in_order(self, phone_engine, mixed_dataset):
        dataset, _ = mixed_dataset
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], workers=2
        ) as executor:
            indexes = [
                index for index, _ in executor.run_dataset(dataset, shard_bytes=64)
            ]
        assert indexes == sorted(indexes)
        assert set(indexes) == {0, 1, 2}

    def test_quoted_embedded_newlines_survive_byte_sharding(self, phone_engine, tmp_path):
        rows = [["line one\nline two", "(906) 555-1234"]] * 9
        _write_csv(tmp_path / "messy.csv", ["note", "phone"], rows)
        dataset = Dataset.resolve(str(tmp_path / "messy.csv"))
        outputs = []
        for shard_bytes in (48, DEFAULT_APPLY_SHARD_BYTES):
            with ShardedTableExecutor(
                {"phone": phone_engine}, ["note", "phone"], workers=2
            ) as executor:
                outputs.append(
                    "".join(
                        chunk
                        for _, (chunk, _, _, _) in executor.run_dataset(
                            dataset, shard_bytes=shard_bytes
                        )
                    )
                )
        assert outputs[0] == outputs[1]
        decoded = list(csv.DictReader(io.StringIO("note,phone,phone_transformed\n" + outputs[0])))
        assert len(decoded) == 9
        assert all(row["note"] == "line one\nline two" for row in decoded)

    def test_sharded_csv_errors_name_exact_lines(self, phone_engine, tmp_path):
        lines = [f"{index},906-555-0000" for index in range(40)]
        lines[33] = "33,906-555-0000,stray"
        (tmp_path / "bad.csv").write_text(
            "id,phone\n" + "\n".join(lines) + "\n", encoding="utf-8"
        )
        dataset = Dataset.resolve(str(tmp_path / "bad.csv"))
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], workers=2
        ) as executor:
            # Line 35: one header line + 34 data lines precede the bad row.
            with pytest.raises(CLXError, match=r"bad\.csv line 35"):
                list(executor.run_dataset(dataset, shard_bytes=64))

    def test_csv_header_drift_fails_loudly(self, phone_engine, tmp_path):
        _write_csv(tmp_path / "part-0.csv", ["id", "phone"], [[0, "x"]])
        _write_csv(tmp_path / "part-1.csv", ["phone", "id"], [["y", 1]])
        dataset = Dataset.resolve(str(tmp_path / "part-*.csv"))
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], workers=1
        ) as executor:
            with pytest.raises(CLXError, match=r"part-1\.csv.*header"):
                list(executor.run_dataset(dataset))


class TestApplyDatasetOrchestration:
    def test_requires_exactly_one_destination(self, phone_engine, mixed_dataset):
        dataset, _ = mixed_dataset
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], workers=1
        ) as executor:
            with pytest.raises(ValidationError, match="exactly one"):
                apply_dataset(executor, dataset)
            with pytest.raises(ValidationError, match="exactly one"):
                apply_dataset(
                    executor, dataset, output="a.csv", stream=io.StringIO()
                )

    def test_output_dir_writes_every_partition(
        self, phone_engine, mixed_dataset, tmp_path
    ):
        dataset, values = mixed_dataset
        outdir = tmp_path / "cleaned"
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], workers=2
        ) as executor:
            result = apply_dataset(executor, dataset, output_dir=outdir)
        assert result.rows == len(values)
        assert result.parts == 3
        assert sorted(path.name for path in result.outputs) == [
            "part-0.csv",
            "part-1.csv",
            "part-2.csv",
        ]
        spliced = "".join(
            "".join((outdir / f"part-{index}.csv").read_text(encoding="utf-8")
                    .splitlines(keepends=True)[1:])
            for index in range(3)
        )
        assert "id,phone,phone_transformed\n" + spliced == _reference_csv(
            phone_engine, values
        )

    def test_empty_partition_still_writes_a_header_only_file(
        self, phone_engine, tmp_path
    ):
        _write_csv(tmp_path / "part-0.csv", ["id", "phone"], [[0, "906.555.1234"]])
        _write_csv(tmp_path / "part-1.csv", ["id", "phone"], [])
        dataset = Dataset.resolve(str(tmp_path / "part-*.csv"))
        outdir = tmp_path / "cleaned"
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], workers=1
        ) as executor:
            result = apply_dataset(executor, dataset, output_dir=outdir)
        assert sorted(path.name for path in result.outputs) == [
            "part-0.csv",
            "part-1.csv",
        ]
        assert (outdir / "part-1.csv").read_text(encoding="utf-8") == (
            "id,phone,phone_transformed\n"
        )

    def test_refuses_to_truncate_an_input_partition(self, phone_engine, mixed_dataset):
        dataset, _ = mixed_dataset
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], workers=1
        ) as executor:
            with pytest.raises(CLXError, match="destroy"):
                apply_dataset(executor, dataset, output=dataset.parts[0].path)

    def test_colliding_partition_names_are_refused(self, phone_engine, tmp_path):
        nested = tmp_path / "nested"
        nested.mkdir()
        _write_csv(tmp_path / "part.csv", ["id", "phone"], [[0, "x"]])
        _write_jsonl(nested / "part.jsonl", [{"id": 1, "phone": "y"}])
        dataset = Dataset.resolve(
            [str(tmp_path / "part.csv"), str(nested / "part.jsonl")]
        )
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], workers=1
        ) as executor:
            with pytest.raises(CLXError, match="same output file"):
                apply_dataset(executor, dataset, output_dir=tmp_path / "out")

    def test_partition_output_name_swaps_only_the_final_extension(self, tmp_path):
        _write_csv(tmp_path / "part.2024.csv", ["id"], [[1]])
        part = Dataset.resolve(str(tmp_path / "part.2024.csv")).parts[0]
        assert partition_output_name(part, "jsonl") == "part.2024.jsonl"
        assert partition_output_name(part, "csv") == "part.2024.csv"


class TestEngineAndSessionApplyDataset:
    def test_engine_apply_dataset_both_sink_formats(
        self, phone_engine, mixed_dataset, tmp_path
    ):
        dataset, values = mixed_dataset
        out_csv = tmp_path / "all.csv"
        result = phone_engine.apply_dataset(dataset, "phone", output=out_csv, workers=2)
        assert result.outputs == [out_csv]
        assert out_csv.read_text(encoding="utf-8") == _reference_csv(
            phone_engine, values
        )

        out_jsonl = tmp_path / "all.jsonl"
        phone_engine.apply_dataset(
            dataset, "phone", output=out_jsonl, out_format="jsonl", workers=2
        )
        decoded = [
            json.loads(line)
            for line in out_jsonl.read_text(encoding="utf-8").splitlines()
        ]
        assert [row["phone_transformed"] for row in decoded] == [
            phone_engine.run_one(value).output for value in values
        ]

    def test_engine_apply_dataset_resolves_specs_and_indexes(
        self, phone_engine, tmp_path
    ):
        _write_csv(tmp_path / "data.csv", ["id", "phone"], [[0, "906.555.1234"]])
        buffer = io.StringIO()
        phone_engine.apply_dataset(
            str(tmp_path / "data.csv"), "1", stream=buffer, in_place=True, workers=1
        )
        assert buffer.getvalue() == "id,phone\n0,906-555-1234\n"

    def test_session_apply_dataset_end_to_end(self, tmp_path):
        raw, _ = phone_dataset(count=60, format_count=4, seed=3)
        session = CLXSession(raw)
        session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        _write_csv(
            tmp_path / "part-0.csv", ["id", "phone"],
            [[index, value] for index, value in enumerate(raw[:30])],
        )
        _write_jsonl(
            tmp_path / "part-1.jsonl",
            [{"id": index + 30, "phone": value} for index, value in enumerate(raw[30:])],
        )
        outdir = tmp_path / "cleaned"
        result = session.apply_dataset(
            str(tmp_path / "part-*"), "phone", output_dir=outdir,
            out_format="jsonl", workers=2,
        )
        assert result.rows == 60
        assert sorted(
            path.name for path in outdir.iterdir() if not path.name.startswith(".")
        ) == [
            "part-0.jsonl",
            "part-1.jsonl",
        ]
        engine = session.engine()
        decoded = [
            json.loads(line)
            for name in ("part-0.jsonl", "part-1.jsonl")
            for line in (outdir / name).read_text(encoding="utf-8").splitlines()
        ]
        assert [row["phone_transformed"] for row in decoded] == [
            engine.run_one(value).output for value in raw
        ]

    def test_sparse_jsonl_keys_profile_and_apply_alike(self, tmp_path):
        # Regression: idiomatic sparse JSONL — the schema is the union
        # of the leading part's keys, so a record introducing a key the
        # first record lacks must apply, not hard-fail, matching what
        # the profile side of the same dataset accepts.
        path = tmp_path / "sparse.jsonl"
        path.write_text(
            '{"id": "1"}\n{"id": "2", "phone": "906.555.1234"}\n',
            encoding="utf-8",
        )
        raw, _ = phone_dataset(count=40, format_count=4, seed=13)
        session = CLXSession(raw)
        session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        profiled = CLXSession.from_dataset(str(path), "id")  # profile side accepts
        assert profiled.hierarchy.total_rows == 2
        buffer = io.StringIO()
        result = session.apply_dataset(str(path), "phone", stream=buffer)
        assert result.rows == 2
        assert buffer.getvalue() == (
            "id,phone,phone_transformed\n"
            "1,,\n"
            "2,906.555.1234,906-555-1234\n"
        )

    def test_session_apply_dataset_validates_columns(self, tmp_path):
        raw, _ = phone_dataset(count=20, format_count=2, seed=9)
        session = CLXSession(raw)
        session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        _write_csv(tmp_path / "data.csv", ["id", "phone"], [[0, raw[0]]])
        with pytest.raises(ValidationError, match="at least one column"):
            session.apply_dataset(
                str(tmp_path / "data.csv"), [], stream=io.StringIO()
            )
