"""Tests for the TransformationTask abstraction."""

from __future__ import annotations

import pytest

from repro.bench.task import TransformationTask
from repro.patterns.parse import parse_pattern


def _task(**overrides):
    base = dict(
        task_id="t",
        source="SyGuS",
        data_type="phone number",
        inputs=["734.236.3466", "734-236-3466"],
        expected={"734.236.3466": "734-236-3466", "734-236-3466": "734-236-3466"},
        target_example="734-236-3466",
    )
    base.update(overrides)
    return TransformationTask(**base)


class TestValidation:
    def test_requires_inputs(self):
        with pytest.raises(ValueError):
            _task(inputs=[], expected={})

    def test_requires_expected_for_every_input(self):
        with pytest.raises(ValueError):
            _task(expected={"734.236.3466": "x"})

    def test_requires_a_target(self):
        with pytest.raises(ValueError):
            _task(target_example=None, target_notation=None)


class TestDerivedProperties:
    def test_size_and_lengths(self):
        task = _task()
        assert task.size == 2
        assert task.max_length == 12
        assert task.min_length == 12
        assert task.average_length == pytest.approx(12.0)

    def test_target_pattern_from_example(self):
        assert _task().target_pattern() == parse_pattern("<D>3'-'<D>3'-'<D>4")

    def test_target_pattern_generalized(self):
        task = _task(target_example="CPT-115", target_generalize=1)
        assert task.target_pattern() == parse_pattern("<U>+'-'<D>+")

    def test_target_pattern_from_notation(self):
        task = _task(target_example=None, target_notation="<L>+")
        assert task.target_pattern() == parse_pattern("<L>+")

    def test_distinct_leaf_patterns(self):
        assert len(_task().distinct_leaf_patterns()) == 2

    def test_desired_output_and_already_correct(self):
        task = _task()
        assert task.desired_output("734.236.3466") == "734-236-3466"
        assert task.desired_output("unknown") == "unknown"
        assert task.already_correct("734-236-3466")
        assert not task.already_correct("734.236.3466")
