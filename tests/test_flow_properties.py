"""Differential property suite for the output-language flow analysis.

The symbolic claim under test: for every branch, the *computed* output
pattern (:func:`~repro.analysis.flow.branch_output_pattern`) denotes a
language containing every *concrete* output the interpreter produces.
The suite compiles all 47 benchmark tasks, samples strings from each
branch's input language (deterministic and seeded-random), runs them
through ``CompiledProgram.run_one``, and checks the concrete output
against the symbolic output NFA — any divergence means the verifier
reasons about a different machine than the one that runs.

Seeded mutants close the loop from the other side: corrupting a plan
constant must cost the artifact its ``verified`` proof (CLX015 names
the corrupted branch), so the proof is falsifiable, not vacuous.

Run with ``CLX_PROPERTY_SEED=random`` for a fresh seed per run, or
``CLX_PROPERTY_SEED=<n>`` to replay a failure (see conftest).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.analyzer import verify_program
from repro.analysis.flow import branch_output_pattern, check_flow, is_verified
from repro.analysis.lang import (
    atom_alphabet,
    nfa_accepts,
    pattern_nfa,
    random_sample_string,
    sample_string,
)
from repro.bench.suite import benchmark_suite
from repro.core.session import CLXSession
from repro.engine.compiled import CompiledProgram

#: Random input samples drawn per branch pattern.
RANDOM_SAMPLES_PER_BRANCH = 5


@pytest.fixture(scope="module")
def suite_artifacts():
    """Every benchmark task compiled through the full session flow."""
    artifacts = {}
    for task in benchmark_suite():
        session = CLXSession(task.inputs)
        session.label_target(task.target_pattern())
        artifacts[task.task_id] = session.compile(metadata={"column": task.task_id})
    return artifacts


def _branch_inputs(compiled, rng):
    """Sampled concrete inputs per branch: deterministic + seeded-random."""
    for branch in compiled.program.branches:
        yield branch, sample_string(branch.pattern)
        yield branch, sample_string(branch.pattern, plus_length=3)
        for _ in range(RANDOM_SAMPLES_PER_BRANCH):
            yield branch, random_sample_string(branch.pattern, rng)


def _accepted_by_symbolic_output(compiled, outcome, concrete_output):
    """Whether some branch with the matched pattern explains the output."""
    candidates = [
        branch
        for branch in compiled.program.branches
        if branch.pattern == outcome.pattern
    ]
    assert candidates, f"matched pattern {outcome.pattern!r} is no branch's"
    for branch in candidates:
        output_pattern = branch_output_pattern(branch)
        atoms = atom_alphabet([output_pattern], extra_text=[concrete_output])
        if nfa_accepts(pattern_nfa(output_pattern, atoms), concrete_output):
            return True
    return False


class TestSuiteVerification:
    def test_all_suite_artifacts_are_verified(self, suite_artifacts):
        """The headline acceptance fact: every benchmark program proves out."""
        unverified = [
            task_id
            for task_id, compiled in suite_artifacts.items()
            if not verify_program(compiled, task_id)[1]
        ]
        assert unverified == []


class TestDifferentialOutputs:
    def test_concrete_outputs_lie_in_symbolic_output_language(
        self, suite_artifacts, property_rng
    ):
        """run_one's output is always inside the computed output NFA."""
        checked = 0
        for task_id, compiled in suite_artifacts.items():
            for branch, value in _branch_inputs(compiled, property_rng):
                outcome = compiled.run_one(value)
                if not outcome.matched or outcome.pattern == compiled.target:
                    # Pass-through (or unmatched): nothing symbolic to check.
                    continue
                assert _accepted_by_symbolic_output(compiled, outcome, outcome.output), (
                    f"{task_id}: input {value!r} produced {outcome.output!r}, "
                    f"outside the symbolic output language of the matched "
                    f"branch {outcome.pattern.notation()}"
                )
                checked += 1
        assert checked > 100  # the property must actually have bitten

    def test_verified_artifacts_emit_target_or_echo(self, suite_artifacts, property_rng):
        """On a verified artifact, every matched transform lands in the target.

        Identity branches echo their input (that is their exemption), so
        the claim is: output conforms to the target, or output == input.
        """
        for task_id, compiled in suite_artifacts.items():
            if not verify_program(compiled, task_id)[1]:  # pragma: no cover
                continue
            target = compiled.target
            target_atoms_base = [target]
            for branch, value in _branch_inputs(compiled, property_rng):
                outcome = compiled.run_one(value)
                if not outcome.matched:
                    continue
                if outcome.output == value:
                    continue
                atoms = atom_alphabet(target_atoms_base, extra_text=[outcome.output])
                assert nfa_accepts(pattern_nfa(target, atoms), outcome.output), (
                    f"{task_id}: verified artifact transformed {value!r} to "
                    f"{outcome.output!r}, which is outside the target "
                    f"{target.notation()}"
                )


def _mutate_first_constant(compiled):
    """A wrong-constant mutant via the JSON wire format, or None.

    Serializing and corrupting the first ``const`` op mimics an artifact
    edited (or corrupted) after compile — exactly what ``verify`` exists
    to catch.
    """
    payload = json.loads(compiled.dumps())
    for branch in payload["program"]["branches"]:
        for op in branch["plan"]:
            if op.get("op") == "const":
                op["text"] = "~corrupt~"
                return CompiledProgram.loads(json.dumps(payload))
    return None


class TestSeededMutants:
    def test_wrong_constant_mutants_lose_the_proof(self, suite_artifacts):
        mutated = 0
        for task_id, compiled in suite_artifacts.items():
            if not verify_program(compiled, task_id)[1]:  # pragma: no cover
                continue
            mutant = _mutate_first_constant(compiled)
            if mutant is None:
                continue  # all-extract program: no constant to corrupt
            findings = check_flow(mutant, task_id)
            assert not is_verified(findings), (
                f"{task_id}: corrupting a plan constant kept the proof"
            )
            assert any(f.rule_id in ("CLX015", "CLX016") for f in findings)
            mutated += 1
        assert mutated >= 10  # the mutant family must be well represented

    def test_mutant_names_the_corrupted_branch(self, suite_artifacts):
        compiled = suite_artifacts["flashfill-phone"]
        mutant = _mutate_first_constant(compiled)
        assert mutant is not None
        findings = [
            f for f in check_flow(mutant, "mutant") if f.rule_id == "CLX015"
        ]
        assert findings
        assert "~corrupt~" in findings[0].data["output"]
