"""Tests for CompiledProgram — the serializable compile-once artifact."""

from __future__ import annotations

import pytest

from repro.core.session import CLXSession
from repro.core.transformer import transform_column
from repro.dsl.ast import AtomicPlan, Branch, ConstStr, Extract, UniFiProgram
from repro.dsl.guards import ContainsGuard
from repro.dsl.interpreter import apply_program
from repro.engine.compiled import CompiledProgram, compile_program
from repro.patterns.parse import parse_pattern
from repro.util.errors import SerializationError, TransformError


@pytest.fixture
def phone_session(phone_values, phone_target):
    session = CLXSession(phone_values)
    session.label_target(phone_target)
    return session


class TestCompilation:
    def test_matches_session_transform(self, phone_session, phone_values):
        expected = phone_session.transform()
        compiled = CompiledProgram(phone_session.program, phone_session.target)
        report = compiled.run(phone_values)
        assert report.outputs == expected.outputs
        assert report.matched_pattern == expected.matched_pattern

    def test_matches_interpreter_on_non_target_values(self, phone_session):
        compiled = phone_session.compile()
        for value in ["(734) 645-8397", "734.236.3466", "definitely not a phone"]:
            outcome = compiled.run_one(value)
            reference = apply_program(phone_session.program, value)
            assert outcome.output == reference.output

    def test_target_values_pass_through(self, phone_session, phone_target):
        compiled = phone_session.compile()
        outcome = compiled.run_one("734-422-8073")
        assert outcome.output == "734-422-8073"
        assert outcome.matched and outcome.pattern == phone_target

    def test_unmatched_values_flagged_unchanged(self, phone_session):
        outcome = phone_session.compile().run_one("N/A!!!")
        assert outcome.output == "N/A!!!"
        assert not outcome.matched and outcome.pattern is None

    def test_out_of_range_extract_fails_at_compile_time(self):
        branch = Branch(
            pattern=parse_pattern("<D>3"),
            plan=AtomicPlan([Extract(2)]),  # pattern has a single token
        )
        with pytest.raises(TransformError):
            CompiledProgram(UniFiProgram([branch]), parse_pattern("<D>4"))

    def test_guarded_branches_respect_guards(self):
        pattern = parse_pattern("<L>+")
        program = UniFiProgram(
            [
                Branch(
                    pattern=pattern,
                    plan=AtomicPlan([ConstStr("PIC")]),
                    guard=ContainsGuard("picture"),
                ),
                Branch(pattern=pattern, plan=AtomicPlan([Extract(1)])),
            ]
        )
        compiled = CompiledProgram(program, parse_pattern("<U>+"))
        assert compiled.run_one("picture").output == "PIC"
        assert compiled.run_one("words").output == "words"

    def test_functional_constructor(self, phone_session, phone_values):
        compiled = compile_program(phone_session.program, phone_session.target)
        assert compiled == phone_session.compile()
        assert len(compiled) == len(phone_session.program)

    def test_equality_and_hash(self, phone_session):
        first = phone_session.compile()
        second = phone_session.compile()
        assert first == second
        assert hash(first) == hash(second)
        assert first != object()


class TestSerialization:
    def test_json_round_trip_identical_outputs(self, phone_session, phone_values):
        compiled = phone_session.compile()
        revived = CompiledProgram.loads(compiled.dumps())
        assert revived == compiled
        assert revived.run(phone_values).outputs == compiled.run(phone_values).outputs

    def test_round_trip_preserves_guards(self):
        pattern = parse_pattern("<L>+")
        program = UniFiProgram(
            [
                Branch(
                    pattern=pattern,
                    plan=AtomicPlan([ConstStr("X")]),
                    guard=ContainsGuard("kw", case_sensitive=False),
                )
            ]
        )
        compiled = CompiledProgram(program, parse_pattern("<U>+"))
        revived = CompiledProgram.loads(compiled.dumps(indent=2))
        assert revived.program.branches[0].guard == ContainsGuard("kw", case_sensitive=False)

    def test_metadata_round_trips(self, phone_session):
        compiled = phone_session.compile(metadata={"column": "phone", "rows": 7})
        revived = CompiledProgram.loads(compiled.dumps())
        assert revived.metadata == {"column": "phone", "rows": 7}

    def test_metadata_is_copied(self, phone_session):
        compiled = phone_session.compile(metadata={"column": "phone"})
        compiled.metadata["column"] = "mutated"
        assert compiled.metadata == {"column": "phone"}

    def test_envelope_is_versioned(self, phone_session):
        payload = phone_session.compile().to_dict()
        assert payload["format"] == CompiledProgram.FORMAT
        assert payload["version"] == CompiledProgram.VERSION

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda payload: payload.pop("format"),
            lambda payload: payload.update(format="clx/other"),
            lambda payload: payload.update(version=99),
            lambda payload: payload.pop("program"),
            lambda payload: payload.pop("target"),
            lambda payload: payload.update(metadata=[1, 2]),
        ],
    )
    def test_malformed_envelopes_rejected(self, phone_session, mutate):
        payload = phone_session.compile().to_dict()
        mutate(payload)
        with pytest.raises(SerializationError):
            CompiledProgram.from_dict(payload)

    def test_loads_rejects_bad_json(self):
        with pytest.raises(SerializationError):
            CompiledProgram.loads("][")
        with pytest.raises(SerializationError):
            CompiledProgram.loads('"a string"')

    def test_equals_transform_column_after_round_trip(self, phone_session, phone_values):
        compiled = CompiledProgram.loads(phone_session.compile().dumps())
        reference = transform_column(
            phone_session.program, phone_values, phone_session.target
        )
        assert compiled.run(phone_values).outputs == reference.outputs


class TestMetadataValidation:
    def _program(self):
        return UniFiProgram(
            (Branch(parse_pattern("<D>3'.'<D>4"), AtomicPlan([Extract(1)])),)
        )

    def test_unserializable_metadata_rejected_at_construction(self):
        # The old behavior deferred the failure to dumps(), long after
        # the caller that supplied the bad value has left the stack.
        with pytest.raises(SerializationError, match="JSON-serializable"):
            CompiledProgram(
                self._program(),
                parse_pattern("<D>3'-'<D>4"),
                metadata={"column": object()},
            )

    def test_non_string_safe_values_rejected(self):
        with pytest.raises(SerializationError):
            CompiledProgram(
                self._program(),
                parse_pattern("<D>3'-'<D>4"),
                metadata={"nan": float("nan")},
            )

    def test_serializable_metadata_accepted(self):
        compiled = CompiledProgram(
            self._program(),
            parse_pattern("<D>3'-'<D>4"),
            metadata={"column": "phone", "rows": 3, "nested": {"ok": [1, 2]}},
        )
        assert CompiledProgram.loads(compiled.dumps()).metadata == compiled.metadata
