"""Tests for CompiledProgram — the serializable compile-once artifact."""

from __future__ import annotations

import pytest

from repro.core.session import CLXSession
from repro.core.transformer import transform_column
from repro.dsl.ast import AtomicPlan, Branch, ConstStr, Extract, UniFiProgram
from repro.dsl.guards import ContainsGuard
from repro.dsl.interpreter import apply_program
from repro.engine.compiled import CompiledProgram, compile_program
from repro.patterns.parse import parse_pattern
from repro.util.errors import SerializationError, TransformError, ValidationError


def _bypassed_extract(start, end):
    """An Extract built around the AST validator, as a corrupted wire
    artifact (or any out-of-band construction) could produce."""
    expression = object.__new__(Extract)
    object.__setattr__(expression, "start", start)
    object.__setattr__(expression, "end", end)
    return expression


@pytest.fixture
def phone_session(phone_values, phone_target):
    session = CLXSession(phone_values)
    session.label_target(phone_target)
    return session


class TestCompilation:
    def test_matches_session_transform(self, phone_session, phone_values):
        expected = phone_session.transform()
        compiled = CompiledProgram(phone_session.program, phone_session.target)
        report = compiled.run(phone_values)
        assert report.outputs == expected.outputs
        assert report.matched_pattern == expected.matched_pattern

    def test_matches_interpreter_on_non_target_values(self, phone_session):
        compiled = phone_session.compile()
        for value in ["(734) 645-8397", "734.236.3466", "definitely not a phone"]:
            outcome = compiled.run_one(value)
            reference = apply_program(phone_session.program, value)
            assert outcome.output == reference.output

    def test_target_values_pass_through(self, phone_session, phone_target):
        compiled = phone_session.compile()
        outcome = compiled.run_one("734-422-8073")
        assert outcome.output == "734-422-8073"
        assert outcome.matched and outcome.pattern == phone_target

    def test_unmatched_values_flagged_unchanged(self, phone_session):
        outcome = phone_session.compile().run_one("N/A!!!")
        assert outcome.output == "N/A!!!"
        assert not outcome.matched and outcome.pattern is None

    def test_out_of_range_extract_fails_at_compile_time(self):
        branch = Branch(
            pattern=parse_pattern("<D>3"),
            plan=AtomicPlan([Extract(2)]),  # pattern has a single token
        )
        with pytest.raises(TransformError):
            CompiledProgram(UniFiProgram([branch]), parse_pattern("<D>4"))

    def test_guarded_branches_respect_guards(self):
        pattern = parse_pattern("<L>+")
        program = UniFiProgram(
            [
                Branch(
                    pattern=pattern,
                    plan=AtomicPlan([ConstStr("PIC")]),
                    guard=ContainsGuard("picture"),
                ),
                Branch(pattern=pattern, plan=AtomicPlan([Extract(1)])),
            ]
        )
        compiled = CompiledProgram(program, parse_pattern("<U>+"))
        assert compiled.run_one("picture").output == "PIC"
        assert compiled.run_one("words").output == "words"

    def test_functional_constructor(self, phone_session, phone_values):
        compiled = compile_program(phone_session.program, phone_session.target)
        assert compiled == phone_session.compile()
        assert len(compiled) == len(phone_session.program)

    def test_equality_and_hash(self, phone_session):
        first = phone_session.compile()
        second = phone_session.compile()
        assert first == second
        assert hash(first) == hash(second)
        assert first != object()


class TestSerialization:
    def test_json_round_trip_identical_outputs(self, phone_session, phone_values):
        compiled = phone_session.compile()
        revived = CompiledProgram.loads(compiled.dumps())
        assert revived == compiled
        assert revived.run(phone_values).outputs == compiled.run(phone_values).outputs

    def test_round_trip_preserves_guards(self):
        pattern = parse_pattern("<L>+")
        program = UniFiProgram(
            [
                Branch(
                    pattern=pattern,
                    plan=AtomicPlan([ConstStr("X")]),
                    guard=ContainsGuard("kw", case_sensitive=False),
                )
            ]
        )
        compiled = CompiledProgram(program, parse_pattern("<U>+"))
        revived = CompiledProgram.loads(compiled.dumps(indent=2))
        assert revived.program.branches[0].guard == ContainsGuard("kw", case_sensitive=False)

    def test_metadata_round_trips(self, phone_session):
        compiled = phone_session.compile(metadata={"column": "phone", "rows": 7})
        revived = CompiledProgram.loads(compiled.dumps())
        assert revived.metadata == {"column": "phone", "rows": 7}

    def test_metadata_is_copied(self, phone_session):
        compiled = phone_session.compile(metadata={"column": "phone"})
        compiled.metadata["column"] = "mutated"
        assert compiled.metadata == {"column": "phone"}

    def test_envelope_is_versioned(self, phone_session):
        payload = phone_session.compile().to_dict()
        assert payload["format"] == CompiledProgram.FORMAT
        assert payload["version"] == CompiledProgram.VERSION

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda payload: payload.pop("format"),
            lambda payload: payload.update(format="clx/other"),
            lambda payload: payload.update(version=99),
            lambda payload: payload.pop("program"),
            lambda payload: payload.pop("target"),
            lambda payload: payload.update(metadata=[1, 2]),
        ],
    )
    def test_malformed_envelopes_rejected(self, phone_session, mutate):
        payload = phone_session.compile().to_dict()
        mutate(payload)
        with pytest.raises(SerializationError):
            CompiledProgram.from_dict(payload)

    def test_loads_rejects_bad_json(self):
        with pytest.raises(SerializationError):
            CompiledProgram.loads("][")
        with pytest.raises(SerializationError):
            CompiledProgram.loads('"a string"')

    def test_equals_transform_column_after_round_trip(self, phone_session, phone_values):
        compiled = CompiledProgram.loads(phone_session.compile().dumps())
        reference = transform_column(
            phone_session.program, phone_values, phone_session.target
        )
        assert compiled.run(phone_values).outputs == reference.outputs


class TestMetadataValidation:
    def _program(self):
        return UniFiProgram(
            (Branch(parse_pattern("<D>3'.'<D>4"), AtomicPlan([Extract(1)])),)
        )

    def test_unserializable_metadata_rejected_at_construction(self):
        # The old behavior deferred the failure to dumps(), long after
        # the caller that supplied the bad value has left the stack.
        with pytest.raises(SerializationError, match="JSON-serializable"):
            CompiledProgram(
                self._program(),
                parse_pattern("<D>3'-'<D>4"),
                metadata={"column": object()},
            )

    def test_non_string_safe_values_rejected(self):
        with pytest.raises(SerializationError):
            CompiledProgram(
                self._program(),
                parse_pattern("<D>3'-'<D>4"),
                metadata={"nan": float("nan")},
            )

    def test_serializable_metadata_accepted(self):
        compiled = CompiledProgram(
            self._program(),
            parse_pattern("<D>3'-'<D>4"),
            metadata={"column": "phone", "rows": 3, "nested": {"ok": [1, 2]}},
        )
        assert CompiledProgram.loads(compiled.dumps()).metadata == compiled.metadata


class TestPlanRangeValidation:
    """The start<1 / end<start guard in _compile_plan_ops.

    ``Extract.__init__`` validates its indices, but the compile path
    must not trust it: a corrupted wire artifact or out-of-band
    construction that smuggles ``start < 1`` past the AST would compile
    to a negative group slice that silently emits wrong output.
    """

    def _program_with(self, expression):
        branch = Branch(
            pattern=parse_pattern("<D>3'.'<D>4"),
            plan=AtomicPlan([expression]),
        )
        return UniFiProgram([branch])

    def test_start_below_one_rejected_naming_branch(self):
        program = self._program_with(_bypassed_extract(0, 1))
        with pytest.raises(TransformError, match="branch 1"):
            CompiledProgram(program, parse_pattern("<D>3'-'<D>4"))

    def test_negative_start_rejected(self):
        program = self._program_with(_bypassed_extract(-2, 1))
        with pytest.raises(TransformError, match="invalid token range"):
            CompiledProgram(program, parse_pattern("<D>3'-'<D>4"))

    def test_end_before_start_rejected(self):
        program = self._program_with(_bypassed_extract(3, 1))
        with pytest.raises(TransformError, match="branch 1"):
            CompiledProgram(program, parse_pattern("<D>3'-'<D>4"))

    def test_error_names_the_offending_branch(self):
        pattern = parse_pattern("<D>3'.'<D>4")
        program = UniFiProgram(
            [
                Branch(pattern=pattern, plan=AtomicPlan([Extract(1)])),
                Branch(pattern=pattern, plan=AtomicPlan([_bypassed_extract(0, 1)])),
            ]
        )
        with pytest.raises(TransformError, match="branch 2"):
            CompiledProgram(program, parse_pattern("<D>3'-'<D>4"))

    def test_wire_format_mutant_rejected_on_load(self, phone_session):
        # The wire format's own deserializer also refuses a corrupt
        # range (Extract validates on construction); either way the
        # artifact must never load into a silently-wrong program.
        import json as json_module

        payload = json_module.loads(phone_session.compile().dumps())
        corrupted = False
        for branch in payload["program"]["branches"]:
            for op in branch["plan"]:
                if op.get("op") == "extract":
                    op["start"] = 0
                    corrupted = True
                    break
            if corrupted:
                break
        assert corrupted, "phone program has no extract op to corrupt"
        with pytest.raises((SerializationError, TransformError)):
            CompiledProgram.loads(json_module.dumps(payload))


class TestMemoDispatch:
    def test_memoized_outcomes_match_naive(self, phone_session, phone_values):
        artifact = phone_session.compile().dumps()
        fast = CompiledProgram.loads(artifact)
        naive = CompiledProgram.loads(artifact, memo_size=0, merged_dispatch=False)
        stream = list(phone_values) * 3 + ["nonsense", "nonsense"]
        fast_report = fast.run(stream)
        naive_report = naive.run(stream)
        assert fast_report.outputs == naive_report.outputs
        assert fast_report.matched_pattern == naive_report.matched_pattern
        stats = fast.memo_stats()
        assert stats["hits"] > 0
        assert stats["hits"] + stats["misses"] == len(stream)

    def test_batch_bypasses_memo_when_values_never_repeat(self, phone_session):
        # A mostly-distinct batch is the memo's worst case (pure dict
        # churn), so run() stops consulting it once a warm-up window
        # shows the hit rate stuck near zero — without changing outputs
        # or the stats contract.
        artifact = phone_session.compile().dumps()
        fast = CompiledProgram.loads(artifact)
        naive = CompiledProgram.loads(artifact, memo_size=0, merged_dispatch=False)
        stream = [f"({700 + i % 300}) {100 + i % 900}-{1000 + i}" for i in range(3000)]
        fast_report = fast.run(stream)
        assert fast_report.outputs == naive.run(stream).outputs
        stats = fast.memo_stats()
        assert stats["hits"] == 0
        assert stats["misses"] == len(stream)  # bypassed values still count
        assert stats["entries"] <= fast.memo_size

    def test_run_one_uses_memo(self, phone_session):
        compiled = CompiledProgram.loads(phone_session.compile().dumps())
        first = compiled.run_one("(734) 330-9426")
        second = compiled.run_one("(734) 330-9426")
        assert first == second
        assert compiled.memo_stats()["hits"] == 1
        assert compiled.memo_stats()["misses"] == 1

    def test_memo_size_zero_disables_memo(self, phone_session, phone_values):
        compiled = CompiledProgram.loads(phone_session.compile().dumps(), memo_size=0)
        assert compiled.memo_size == 0
        compiled.run(list(phone_values) * 2)
        stats = compiled.memo_stats()
        assert stats == {"hits": 0, "misses": 0, "entries": 0, "size": 0}

    def test_memo_is_bounded_lru(self, phone_session):
        compiled = CompiledProgram.loads(phone_session.compile().dumps(), memo_size=2)
        values = ["(111) 111-1111", "(222) 222-2222", "(333) 333-3333"]
        for value in values:
            compiled.run_one(value)
        assert compiled.memo_stats()["entries"] == 2
        # The least-recently-used entry (the first value) was evicted:
        # re-running it is a miss, while the most recent two still hit.
        compiled.run_one(values[2])
        assert compiled.memo_stats()["hits"] == 1
        compiled.run_one(values[0])
        assert compiled.memo_stats()["misses"] == 4

    def test_lru_reinsertion_protects_hot_values(self, phone_session):
        compiled = CompiledProgram.loads(phone_session.compile().dumps(), memo_size=2)
        compiled.run_one("(111) 111-1111")
        compiled.run_one("(222) 222-2222")
        compiled.run_one("(111) 111-1111")  # hit: moves to MRU position
        compiled.run_one("(333) 333-3333")  # evicts (222), not (111)
        hits_before = compiled.memo_stats()["hits"]
        compiled.run_one("(111) 111-1111")
        assert compiled.memo_stats()["hits"] == hits_before + 1

    def test_clear_memo_resets_entries_and_counters(self, phone_session, phone_values):
        compiled = CompiledProgram.loads(phone_session.compile().dumps())
        compiled.run(list(phone_values) * 2)
        assert compiled.memo_stats()["entries"] > 0
        compiled.clear_memo()
        assert compiled.memo_stats() == {
            "hits": 0,
            "misses": 0,
            "entries": 0,
            "size": compiled.memo_size,
        }

    def test_memo_excluded_from_equality_and_serialization(self, phone_session):
        artifact = phone_session.compile().dumps()
        default = CompiledProgram.loads(artifact)
        tuned = CompiledProgram.loads(artifact, memo_size=7, merged_dispatch=False)
        assert default == tuned
        assert hash(default) == hash(tuned)
        assert tuned.dumps() == default.dumps()

    @pytest.mark.parametrize("bad", [-1, -4096, 1.5, "16", True])
    def test_invalid_memo_size_rejected(self, phone_session, bad):
        artifact = phone_session.compile().dumps()
        with pytest.raises(ValidationError, match="memo_size"):
            CompiledProgram.loads(artifact, memo_size=bad)


class TestMergedDispatch:
    def _two_branch_program(self):
        return UniFiProgram(
            [
                Branch(
                    pattern=parse_pattern("<D>3'.'<D>4"),
                    plan=AtomicPlan([Extract(1), ConstStr("-"), Extract(3)]),
                ),
                Branch(
                    pattern=parse_pattern("'('<D>3')'' '<D>3'-'<D>4"),
                    plan=AtomicPlan([Extract(2), ConstStr("-"), Extract(5), ConstStr("-"), Extract(7)]),
                ),
            ]
        )

    def test_merged_regex_built_for_unguarded_branches(self):
        compiled = CompiledProgram(
            self._two_branch_program(), parse_pattern("<D>3'-'<D>4")
        )
        assert compiled.merged_dispatch
        assert compiled.merged_prefix == 2

    def test_merged_dispatch_can_be_disabled(self):
        compiled = CompiledProgram(
            self._two_branch_program(),
            parse_pattern("<D>3'-'<D>4"),
            merged_dispatch=False,
        )
        assert not compiled.merged_dispatch
        assert compiled.merged_prefix == 0

    def test_single_branch_stays_on_the_loop(self):
        program = UniFiProgram(
            [Branch(parse_pattern("<D>3'.'<D>4"), AtomicPlan([Extract(1)]))]
        )
        compiled = CompiledProgram(program, parse_pattern("<D>3'-'<D>4"))
        assert not compiled.merged_dispatch
        assert compiled.run_one("123.4567").output == "123"

    def test_merged_outputs_match_naive_loop(self, phone_session, phone_values):
        artifact = phone_session.compile().dumps()
        merged = CompiledProgram.loads(artifact, memo_size=0)
        naive = CompiledProgram.loads(artifact, memo_size=0, merged_dispatch=False)
        probes = list(phone_values) + ["nope", "", "734.236.3466", "(734) 645-8397"]
        for value in probes:
            fast = merged.run_one(value)
            slow = naive.run_one(value)
            assert (fast.output, fast.matched, fast.pattern) == (
                slow.output,
                slow.matched,
                slow.pattern,
            ), value

    def test_first_match_wins_order_preserved(self):
        # Both branches match "abc"; the merged alternation must pick
        # the first, exactly like the sequential loop.
        pattern = parse_pattern("<L>+")
        program = UniFiProgram(
            [
                Branch(pattern=pattern, plan=AtomicPlan([ConstStr("FIRST")])),
                Branch(pattern=pattern, plan=AtomicPlan([ConstStr("SECOND")])),
            ]
        )
        compiled = CompiledProgram(program, parse_pattern("<U>+"))
        assert compiled.merged_prefix == 2
        assert compiled.run_one("abc").output == "FIRST"
        assert compiled.run_one("abc").pattern is program.branches[0].pattern

    def test_guard_in_front_disables_merging(self):
        pattern = parse_pattern("<L>+")
        program = UniFiProgram(
            [
                Branch(
                    pattern=pattern,
                    plan=AtomicPlan([ConstStr("PIC")]),
                    guard=ContainsGuard("picture"),
                ),
                Branch(pattern=pattern, plan=AtomicPlan([Extract(1)])),
                Branch(pattern=parse_pattern("<D>+"), plan=AtomicPlan([ConstStr("NUM")])),
            ]
        )
        compiled = CompiledProgram(program, parse_pattern("<U>+"))
        assert not compiled.merged_dispatch
        assert compiled.run_one("picture").output == "PIC"
        assert compiled.run_one("words").output == "words"
        assert compiled.run_one("123").output == "NUM"

    def test_unguarded_prefix_merges_guarded_tail_falls_back(self):
        program = UniFiProgram(
            [
                Branch(parse_pattern("<D>+"), AtomicPlan([ConstStr("NUM")])),
                Branch(parse_pattern("<U>+"), AtomicPlan([ConstStr("CAPS")])),
                Branch(
                    pattern=parse_pattern("<L>+"),
                    plan=AtomicPlan([ConstStr("PIC")]),
                    guard=ContainsGuard("picture"),
                ),
                Branch(parse_pattern("<L>+"), AtomicPlan([Extract(1)])),
            ]
        )
        compiled = CompiledProgram(program, parse_pattern("'#'"))
        assert compiled.merged_prefix == 2
        assert compiled.run_one("123").output == "NUM"
        assert compiled.run_one("ABC").output == "CAPS"
        assert compiled.run_one("picture").output == "PIC"
        assert compiled.run_one("words").output == "words"

    def test_merged_dispatch_with_multi_token_extracts(self):
        compiled = CompiledProgram(
            self._two_branch_program(), parse_pattern("<D>3'-'<D>4")
        )
        assert compiled.run_one("555.0199").output == "555-0199"
        assert compiled.run_one("(734) 555-0199").output == "734-555-0199"
        assert not compiled.run_one("not a phone").matched
