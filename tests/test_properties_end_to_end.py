"""Property-based end-to-end invariants of the CLX pipeline."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import dates, human_names, medical_codes, phone_numbers
from repro.clustering.profiler import profile
from repro.core.transformer import transform_column
from repro.dsl.explain import explain_program
from repro.dsl.replace import apply_replacements
from repro.patterns.matching import matches, pattern_of_string
from repro.patterns.parse import parse_pattern
from repro.synthesis.repair import oracle_repair
from repro.synthesis.synthesizer import synthesize


class TestPhonePipelineProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_outputs_conform_or_are_flagged_unchanged(self, seed):
        """Every output either matches the target or is the untouched input."""
        raw, _expected = phone_numbers(
            20, ["paren_space", "dots", "dashes", "plus_one"], seed=seed
        )
        target = parse_pattern("<D>3'-'<D>3'-'<D>4")
        result = synthesize(profile(raw), target)
        report = transform_column(result.program, raw, target)
        for value, output, matched in zip(
            report.inputs, report.outputs, report.matched_pattern
        ):
            if matched is None:
                assert output == value
            else:
                assert matches(output, target)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_oracle_repair_reaches_the_expected_outputs(self, seed):
        """With repair, the synthesized program reproduces the oracle exactly."""
        raw, expected = phone_numbers(
            16, ["paren_space", "dots", "dashes"], seed=seed
        )
        target = parse_pattern("<D>3'-'<D>3'-'<D>4")
        result = synthesize(profile(raw), target)
        repaired, _count = oracle_repair(result, expected)
        report = transform_column(repaired.program, raw, target)
        assert [expected[value] for value in raw] == report.outputs

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_explanation_is_faithful_to_the_program(self, seed):
        """Replace operations and the UniFi program agree on every row."""
        raw, _expected = phone_numbers(15, ["paren_tight", "dots"], seed=seed)
        target = parse_pattern("'('<D>3')'' '<D>3'-'<D>4")
        result = synthesize(profile(raw), target)
        operations = explain_program(result.program)
        report = transform_column(result.program, raw, target)
        for value, output in report.pairs():
            if matches(value, target):
                continue
            assert apply_replacements(operations, value) == output


class TestGeneratorDrivenProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_medical_codes_always_normalizable(self, seed):
        raw, expected = medical_codes(12, seed=seed)
        target = parse_pattern("'['<U>+'-'<D>+']'")
        result = synthesize(profile(raw), target)
        repaired, _ = oracle_repair(result, expected)
        report = transform_column(repaired.program, raw, target)
        assert report.outputs == [expected[value] for value in raw]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_profiling_never_loses_rows(self, seed):
        for generator in (human_names, dates):
            raw, _expected = generator(25, seed=seed)
            hierarchy = profile(raw)
            assert hierarchy.total_rows == len(raw)
            for value in raw:
                assert any(matches(value, node.pattern) for node in hierarchy.leaf_nodes)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_leaf_patterns_are_exactly_the_distinct_string_patterns(self, seed):
        raw, _expected = human_names(30, seed=seed)
        hierarchy = profile(raw, discover_constants=False)
        expected_patterns = {pattern_of_string(value) for value in raw}
        assert set(hierarchy.leaf_patterns()) == expected_patterns
