"""Tests for the partitioned-dataset resolution layer."""

from __future__ import annotations

import csv
import json

import pytest

from repro.dataset import Dataset, resolve_dataset
from repro.util.errors import CLXError, ValidationError


def _write_csv(path, header, rows):
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def _write_jsonl(path, rows):
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row) + "\n")
    return path


@pytest.fixture
def partitioned(tmp_path):
    _write_csv(tmp_path / "part-1.csv", ["id", "phone"], [[1, "734-422-8073"]])
    _write_csv(tmp_path / "part-0.csv", ["id", "phone"], [[0, "(734) 645-8397"]])
    _write_jsonl(tmp_path / "part-2.jsonl", [{"id": 2, "phone": "734.236.3466"}])
    return tmp_path


class TestResolution:
    def test_glob_resolves_in_stable_sorted_order(self, partitioned):
        dataset = Dataset.resolve(str(partitioned / "part-*"))
        assert [part.name for part in dataset] == [
            "part-0.csv",
            "part-1.csv",
            "part-2.jsonl",
        ]
        assert [part.format for part in dataset] == ["csv", "csv", "jsonl"]

    def test_directory_takes_every_file(self, partitioned):
        dataset = Dataset.resolve(str(partitioned))
        assert len(dataset) == 3

    def test_multiple_specs_deduplicate(self, partitioned):
        dataset = Dataset.resolve(
            [
                str(partitioned / "part-0.csv"),
                str(partitioned / "part-*.csv"),
            ]
        )
        assert [part.name for part in dataset] == ["part-0.csv", "part-1.csv"]

    def test_literal_missing_path_is_an_error(self, tmp_path):
        with pytest.raises(CLXError, match="matches no file"):
            Dataset.resolve(str(tmp_path / "nope.csv"))

    def test_glob_matching_nothing_is_an_error(self, tmp_path):
        with pytest.raises(CLXError, match="matches no file"):
            Dataset.resolve(str(tmp_path / "part-*.csv"))

    def test_typoed_glob_is_not_silently_dropped(self, partitioned):
        # A zero-match glob must raise even when other specs matched —
        # silently narrowing the dataset would profile a partial column.
        with pytest.raises(CLXError, match="matches no file"):
            Dataset.resolve(
                [str(partitioned / "prat-*.csv"), str(partitioned / "part-0.csv")]
            )

    def test_directory_mode_skips_marker_and_hidden_files(self, partitioned):
        (partitioned / "_SUCCESS").write_text("", encoding="utf-8")
        (partitioned / ".part-0.csv.crc").write_text("x", encoding="utf-8")
        dataset = Dataset.resolve(str(partitioned))
        assert [part.name for part in dataset] == [
            "part-0.csv",
            "part-1.csv",
            "part-2.jsonl",
        ]
        dataset.check_column("phone")

    def test_marker_files_resolve_when_named_explicitly(self, partitioned):
        (partitioned / "_underscored.csv").write_text(
            "id,phone\n1,734\n", encoding="utf-8"
        )
        dataset = Dataset.resolve(str(partitioned / "_underscored.csv"))
        assert [part.name for part in dataset] == ["_underscored.csv"]

    def test_resolve_dataset_shorthand(self, partitioned):
        dataset = resolve_dataset(str(partitioned / "part-0.csv"))
        assert len(dataset) == 1
        assert dataset.describe() == "part-0.csv"

    def test_describe_summarizes_multiple_parts(self, partitioned):
        dataset = Dataset.resolve(str(partitioned / "part-*"))
        assert dataset.describe() == "part-0.csv (+2 more)"


class TestSchemaCheck:
    def test_passes_when_every_part_has_the_column(self, partitioned):
        Dataset.resolve(str(partitioned / "part-*")).check_column("phone")

    def test_names_the_part_missing_the_column(self, partitioned, tmp_path):
        _write_csv(tmp_path / "part-9.csv", ["id", "fax"], [[9, "x"]])
        dataset = Dataset.resolve(str(tmp_path / "part-*"))
        with pytest.raises(ValidationError, match=r"part-9\.csv.*not found"):
            dataset.check_column("phone")

    def test_jsonl_part_missing_the_key_is_named(self, tmp_path):
        _write_jsonl(tmp_path / "part-0.jsonl", [{"id": 0, "fax": "x"}])
        dataset = Dataset.resolve(str(tmp_path / "part-0.jsonl"))
        with pytest.raises(ValidationError, match=r"part-0\.jsonl.*not found"):
            dataset.check_column("phone")

    def test_jsonl_rejects_index_addressing(self, tmp_path):
        _write_jsonl(tmp_path / "part-0.jsonl", [{"phone": "x"}])
        dataset = Dataset.resolve(str(tmp_path / "part-0.jsonl"))
        with pytest.raises(ValidationError, match="by name"):
            dataset.check_column(0)

class TestValueStreaming:
    def test_streams_across_parts_in_order(self, partitioned):
        dataset = Dataset.resolve(str(partitioned / "part-*"))
        values = list(dataset.iter_values("phone"))
        assert values == ["(734) 645-8397", "734-422-8073", "734.236.3466"]

    def test_short_csv_rows_contribute_empty(self, tmp_path):
        (tmp_path / "short.csv").write_text("id,phone\n1,734\n2\n", encoding="utf-8")
        dataset = Dataset.resolve(str(tmp_path / "short.csv"))
        assert list(dataset.iter_values("phone")) == ["734", ""]

    def test_jsonl_null_and_missing_become_empty(self, tmp_path):
        _write_jsonl(
            tmp_path / "rows.jsonl",
            [{"phone": "734"}, {"phone": None}, {"id": 3}, {"phone": 906}],
        )
        dataset = Dataset.resolve(str(tmp_path / "rows.jsonl"))
        assert list(dataset.iter_values("phone")) == ["734", "", "", "906"]

    def test_invalid_json_line_is_named(self, tmp_path):
        (tmp_path / "bad.jsonl").write_text('{"phone": "x"}\nnot json\n', encoding="utf-8")
        dataset = Dataset.resolve(str(tmp_path / "bad.jsonl"))
        with pytest.raises(ValidationError, match="line 2"):
            list(dataset.iter_values("phone"))

    def test_non_object_jsonl_row_is_rejected(self, tmp_path):
        (tmp_path / "bad.jsonl").write_text("[1, 2]\n", encoding="utf-8")
        dataset = Dataset.resolve(str(tmp_path / "bad.jsonl"))
        with pytest.raises(ValidationError, match="objects"):
            list(dataset.iter_values("phone"))


class TestSessionFromDataset:
    def test_opens_a_profile_backed_session(self, partitioned):
        from repro.core.session import CLXSession

        session = CLXSession.from_dataset(str(partitioned / "part-*"), "phone")
        assert session.hierarchy.total_rows == 3
        session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        compiled = session.compile()
        outputs = compiled.run(["(906) 555-1234"]).outputs
        assert outputs == ["906-555-1234"]
