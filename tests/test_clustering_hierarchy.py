"""Tests for the pattern cluster hierarchy data structure."""

from __future__ import annotations

from repro.clustering.profiler import profile
from repro.patterns.matching import matches


class TestHierarchyStructure:
    def test_depth_is_one_plus_refinement_rounds(self, phone_values):
        hierarchy = profile(phone_values)
        assert hierarchy.depth == 4  # leaves + 3 refinement rounds

    def test_leaf_nodes_have_clusters(self, phone_values):
        hierarchy = profile(phone_values)
        for node in hierarchy.leaf_nodes:
            assert node.is_leaf
            assert node.cluster is not None

    def test_roots_cover_all_rows(self, phone_values):
        hierarchy = profile(phone_values)
        assert sum(root.size for root in hierarchy.roots) == len(phone_values)
        assert hierarchy.total_rows == len(phone_values)

    def test_values_traversal_returns_every_row(self, phone_values):
        hierarchy = profile(phone_values)
        collected = []
        for root in hierarchy.roots:
            collected.extend(root.values())
        assert sorted(collected) == sorted(phone_values)

    def test_walk_visits_every_node_once(self, phone_values):
        hierarchy = profile(phone_values)
        visited = list(hierarchy.walk())
        leaf_visits = [node for node in visited if node.is_leaf]
        assert len(leaf_visits) == len(hierarchy.leaf_nodes)

    def test_leaves_of_root_are_the_leaf_layer(self, phone_values):
        hierarchy = profile(phone_values)
        leaves_from_roots = [leaf for root in hierarchy.roots for leaf in root.leaves()]
        assert {id(n) for n in leaves_from_roots} == {id(n) for n in hierarchy.leaf_nodes}

    def test_find_leaf(self, phone_values):
        hierarchy = profile(phone_values)
        first = hierarchy.leaf_nodes[0]
        assert hierarchy.find_leaf(first.pattern) is first

    def test_all_patterns_are_unique(self, phone_values):
        hierarchy = profile(phone_values)
        patterns = hierarchy.all_patterns()
        assert len(patterns) == len(set(patterns))

    def test_describe_mentions_every_leaf(self, phone_values):
        hierarchy = profile(phone_values)
        description = hierarchy.describe()
        for node in hierarchy.leaf_nodes:
            assert node.pattern.notation() in description

    def test_ancestor_patterns_cover_descendant_values(self, phone_values):
        """Any value under a node matches that node's pattern (regex sense)."""
        hierarchy = profile(phone_values)
        for node in hierarchy.walk():
            for value in node.values():
                assert matches(value, node.pattern)
