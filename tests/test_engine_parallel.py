"""Tests for the sharded multi-process executor.

The centerpiece is the equivalence suite: across every program the
synthesizer produces for the 47-task benchmark suite, ``run``,
``run_iter`` and ``run_parallel`` must yield identical
:class:`TransformOutcome` sequences — sharding is an execution detail,
never a semantics change.
"""

from __future__ import annotations

import csv
import os

import pytest

from repro.bench.phone import phone_dataset
from repro.bench.suite import benchmark_suite
from repro.core.session import CLXSession
from repro.dataset import Dataset
from repro.engine.parallel import AdaptiveChunker, ShardedExecutor, ShardedTableExecutor
from repro.util.errors import CLXError, SynthesisError, ValidationError


def _engines_for_suite():
    """(task, engine) for every synthesizable task of the 47-task suite."""
    pairs = []
    for task in benchmark_suite():
        session = CLXSession(task.inputs)
        session.label_target(task.target_pattern())
        try:
            engine = session.engine()
        except SynthesisError:
            continue
        pairs.append((task, engine))
    return pairs


def _signature(outcomes):
    return [(o.output, o.matched, o.pattern) for o in outcomes]


class TestSuiteEquivalence:
    def test_run_run_iter_and_run_parallel_agree_across_the_suite(self):
        pairs = _engines_for_suite()
        assert len(pairs) >= 40  # almost all of the 47 tasks synthesize
        for task, engine in pairs:
            report = engine.run(task.inputs)
            batch = list(
                zip(
                    report.outputs,
                    [pattern is not None for pattern in report.matched_pattern],
                    report.matched_pattern,
                )
            )
            streamed = _signature(engine.run_iter(iter(task.inputs), chunk_size=7))
            assert streamed == batch, task.task_id
            with ShardedExecutor(engine, workers=2, chunk_size=5) as executor:
                sharded = _signature(executor.run_iter(iter(task.inputs)))
            assert sharded == batch, task.task_id

    def test_run_parallel_report_equals_run_report(self):
        values, _ = phone_dataset(count=2000, format_count=6, seed=41)
        raw, _ = phone_dataset(count=300, format_count=6, seed=331)
        session = CLXSession(raw)
        session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        engine = session.engine()
        single = engine.run(values)
        parallel = engine.run_parallel(values, workers=2, chunk_size=256)
        assert parallel.inputs == single.inputs
        assert parallel.outputs == single.outputs
        assert parallel.matched_pattern == single.matched_pattern
        assert parallel.target == single.target
        assert parallel.flagged_count == single.flagged_count


@pytest.fixture
def phone_engine():
    raw, _ = phone_dataset(count=100, format_count=4, seed=13)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    return session.engine()


class TestShardedExecutor:
    def test_results_preserve_input_order(self, phone_engine):
        values, _ = phone_dataset(count=997, format_count=4, seed=23)
        expected = [phone_engine.run_one(value).output for value in values]
        with ShardedExecutor(phone_engine, workers=2, chunk_size=64) as executor:
            assert [o.output for o in executor.run_iter(iter(values))] == expected

    def test_executor_is_reusable_across_runs(self, phone_engine):
        values, _ = phone_dataset(count=60, format_count=4, seed=29)
        with ShardedExecutor(phone_engine, workers=2, chunk_size=16) as executor:
            first = executor.run(values)
            second = executor.run(values)
        assert first.outputs == second.outputs

    def test_consumes_a_generator_lazily(self, phone_engine):
        pulled = []

        def source():
            values, _ = phone_dataset(count=500, format_count=4, seed=31)
            for value in values:
                pulled.append(value)
                yield value

        with ShardedExecutor(phone_engine, workers=2, chunk_size=10) as executor:
            iterator = executor.run_iter(source())
            next(iterator)
            # A bounded window of chunks may be in flight, but the whole
            # 500-value generator must not have been drained eagerly.
            assert len(pulled) <= 10 * (executor.workers + 3)

    def test_accepts_engine_or_compiled(self, phone_engine):
        ShardedExecutor(phone_engine, workers=1).close()
        ShardedExecutor(phone_engine.compiled, workers=1).close()

    def test_rejects_bad_arguments(self, phone_engine):
        with pytest.raises(ValidationError):
            ShardedExecutor(phone_engine, workers=0)
        with pytest.raises(ValidationError):
            ShardedExecutor(phone_engine, chunk_size=0)
        with pytest.raises(ValidationError):
            ShardedExecutor("not a program")

    def test_close_is_idempotent(self, phone_engine):
        executor = ShardedExecutor(phone_engine, workers=1)
        executor.close()
        executor.close()

    def test_dead_worker_raises_clx_error_instead_of_hanging(self, phone_engine):
        class Kamikaze(str):
            """Unpickling this value kills the worker that receives it."""

            def __reduce__(self):
                return (os._exit, (13,))

        values = ["734-422-8073"] * 30 + [Kamikaze("906-555-1234")]
        with ShardedExecutor(phone_engine, workers=2, chunk_size=8) as executor:
            with pytest.raises(CLXError, match="worker process died"):
                list(executor.run_iter(iter(values)))

    def test_worker_death_mid_stream_raises_clx_error(self, phone_engine):
        # The poison chunk sits near the front of a long stream, so the
        # pool breaks while later chunks are still being *submitted* —
        # submit-side BrokenProcessPool must be translated too.
        class Kamikaze(str):
            def __reduce__(self):
                return (os._exit, (13,))

        values = (
            ["734-422-8073"] * 3
            + [Kamikaze("906-555-1234")]
            + ["734-422-8073"] * 5000
        )
        with ShardedExecutor(phone_engine, workers=2, chunk_size=2) as executor:
            with pytest.raises(CLXError, match="worker process died"):
                list(executor.run_iter(iter(values)))


class TestRunParallelFallback:
    def test_single_worker_falls_back_to_in_process_run(self, phone_engine, monkeypatch):
        import repro.engine.parallel as parallel_module

        def boom(*args, **kwargs):  # pragma: no cover - must not be hit
            raise AssertionError("no pool should be spawned for workers=1")

        monkeypatch.setattr(parallel_module.ShardedExecutor, "_ensure_pool", boom)
        values, _ = phone_dataset(count=40, format_count=4, seed=37)
        report = phone_engine.run_parallel(values, workers=1)
        assert report.outputs == phone_engine.run(values).outputs

    def test_accepts_an_iterator_when_falling_back(self, phone_engine):
        values, _ = phone_dataset(count=20, format_count=4, seed=43)
        report = phone_engine.run_parallel(iter(values), workers=1)
        assert report.row_count == 20


class TestAdaptiveChunker:
    def _chunker(self, **overrides):
        kwargs = dict(initial=64, minimum=4, maximum=1024, target_seconds=0.05)
        kwargs.update(overrides)
        return AdaptiveChunker(**kwargs)

    def test_slow_tasks_halve_the_size(self):
        sizer = self._chunker()
        sizer.observe(0.2)  # > 2x the 50ms target
        assert sizer.size == 32
        sizer.observe(0.2)
        assert sizer.size == 16

    def test_fast_tasks_double_the_size(self):
        sizer = self._chunker()
        sizer.observe(0.01)  # < half the 50ms target
        assert sizer.size == 128

    def test_in_band_latency_keeps_the_size(self):
        sizer = self._chunker()
        for seconds in (0.03, 0.05, 0.09):  # within [target/2, 2*target]
            sizer.observe(seconds)
        assert sizer.size == 64

    def test_size_clamps_at_the_bounds(self):
        sizer = self._chunker(initial=8, minimum=4, maximum=16)
        for _ in range(5):
            sizer.observe(1.0)
        assert sizer.size == 4
        for _ in range(10):
            sizer.observe(0.0001)
        assert sizer.size == 16

    def test_initial_size_is_clamped_into_bounds(self):
        assert self._chunker(initial=1, minimum=4, maximum=16).size == 4
        assert self._chunker(initial=9999, minimum=4, maximum=16).size == 16

    @pytest.mark.parametrize("minimum,maximum", [(0, 10), (-1, 10), (8, 4)])
    def test_invalid_bounds_are_rejected(self, minimum, maximum):
        with pytest.raises(ValidationError, match="adaptive bounds"):
            self._chunker(minimum=minimum, maximum=maximum)

    @pytest.mark.parametrize("target", [0, -0.5])
    def test_non_positive_target_is_rejected(self, target):
        with pytest.raises(ValidationError, match="adaptive target"):
            self._chunker(target_seconds=target)

    def test_stats_report_samples_mean_and_size(self):
        sizer = self._chunker()
        assert sizer.stats() == {"samples": 0.0, "mean_seconds": 0.0, "size": 64.0}
        sizer.observe(0.04)
        sizer.observe(0.06)
        stats = sizer.stats()
        assert stats["samples"] == 2.0
        assert stats["mean_seconds"] == pytest.approx(0.05)
        assert stats["size"] == 64.0


class TestAdaptiveExecutor:
    @pytest.fixture
    def phone_csv(self, tmp_path):
        values, _ = phone_dataset(count=60, format_count=4, seed=29)
        path = tmp_path / "phones.csv"
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["phone"])
            writer.writerows([value] for value in values)
        return path, values

    def test_static_executor_reports_no_sizers(self, phone_engine):
        with ShardedTableExecutor({"phone": phone_engine}, ["phone"], workers=1) as executor:
            assert executor.adaptive_target_ms is None
            assert executor.adaptive_stats() == {}

    @pytest.mark.parametrize("bad", [0, -1, 2.5, True])
    def test_invalid_adaptive_target_is_rejected(self, phone_engine, bad):
        with pytest.raises(ValidationError, match="adaptive_target_ms"):
            ShardedTableExecutor(
                {"phone": phone_engine}, ["phone"], workers=1, adaptive_target_ms=bad
            )

    def test_adaptive_run_records_samples_and_keeps_bytes(self, phone_engine, phone_csv):
        path, values = phone_csv
        dataset = Dataset.resolve(str(path))

        def run(target_ms):
            with ShardedTableExecutor(
                {"phone": phone_engine},
                ["phone"],
                workers=1,
                chunk_size=8,
                adaptive_target_ms=target_ms,
            ) as executor:
                chunks = list(executor.run_dataset(dataset.parts, shard_bytes=256))
                # The shard sizer paces run_dataset; the line sizer paces
                # the run_chunks path — drive both before reading stats.
                list(executor.run_csv_file(path))
                return (
                    "".join(chunk.text for _, chunk in chunks),
                    executor.adaptive_stats(),
                )

        static_text, static_stats = run(None)
        adaptive_text, stats = run(1)  # 1ms target: resizes aggressively
        assert adaptive_text == static_text  # sizing never changes sink bytes
        assert static_stats == {}
        assert set(stats) == {"chunk_lines", "shard_bytes"}
        assert stats["chunk_lines"]["samples"] > 0
        assert stats["shard_bytes"]["samples"] > 0
        assert stats["chunk_lines"]["size"] >= 1.0
