"""Tests for pattern-to-regex compilation."""

from __future__ import annotations

import re

import pytest

from repro.patterns.parse import parse_pattern
from repro.patterns.regex import compile_pattern, grouped_regex, pattern_to_regex


class TestPatternToRegex:
    def test_anchored_by_default(self):
        regex = pattern_to_regex(parse_pattern("<D>3"))
        assert regex == "^[0-9]{3}$"

    def test_unanchored(self):
        assert pattern_to_regex(parse_pattern("<D>3"), anchored=False) == "[0-9]{3}"

    def test_literals_are_escaped(self):
        regex = pattern_to_regex(parse_pattern("'('<D>3')'"))
        assert re.match(regex, "(123)")
        assert not re.match(regex, "x123)")

    def test_plus_quantifier(self):
        regex = pattern_to_regex(parse_pattern("<L>+"))
        assert re.match(regex, "abc")
        assert not re.match(regex, "")

    def test_phone_pattern_matches_expected_strings(self):
        regex = compile_pattern(parse_pattern("'('<D>3')'' '<D>3'-'<D>4"))
        assert regex.match("(734) 645-8397")
        assert not regex.match("(734)645-8397")
        assert not regex.match("(734) 645-8397 ")


class TestCompileCache:
    def test_compile_pattern_returns_same_object_for_same_pattern(self):
        pattern = parse_pattern("<D>3'-'<D>4")
        assert compile_pattern(pattern) is compile_pattern(pattern)


class TestGroupedRegex:
    def test_single_group(self):
        pattern = parse_pattern("'('<D>3')'")
        regex = grouped_regex(pattern, [(1, 1)])
        match = re.match(regex, "(734)")
        assert match and match.group(1) == "734"

    def test_multi_token_group(self):
        pattern = parse_pattern("<D>3'-'<D>4")
        regex = grouped_regex(pattern, [(0, 2)])
        match = re.match(regex, "645-8397")
        assert match and match.group(1) == "645-8397"

    def test_multiple_groups_in_order(self):
        pattern = parse_pattern("<D>3'-'<D>4")
        regex = grouped_regex(pattern, [(0, 0), (2, 2)])
        match = re.match(regex, "645-8397")
        assert match.group(1) == "645" and match.group(2) == "8397"

    @pytest.mark.parametrize(
        "groups",
        [[(2, 1)], [(0, 5)], [(-1, 0)], [(0, 1), (1, 2)]],
    )
    def test_invalid_ranges_raise(self, groups):
        pattern = parse_pattern("<D>3'-'<D>4")
        with pytest.raises(ValueError):
            grouped_regex(pattern, groups)
