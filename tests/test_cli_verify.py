"""Golden-file CLI tests for ``repro-clx verify`` and its integrations.

Covers the verify reporters (text + JSON with the per-artifact verdict
map), the ``--fail-on`` contract, registry-fingerprint artifact specs
(``--cache-dir``), the stamped ``verified``/``rules`` registry keys and
their ``artifacts list`` column, ``compile --strict`` refusing
unverifiable artifacts, and the ``apply`` pipeline-composition
pre-flight.
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.analysis.findings import RULESET_VERSION
from repro.cli import main
from repro.dsl.ast import AtomicPlan, Branch, ConstStr, Extract, UniFiProgram
from repro.dsl.guards import ContainsGuard
from repro.engine.cache import ArtifactRegistry, RegistryEntry
from repro.engine.compiled import CompiledProgram
from repro.patterns.parse import parse_pattern as P

TARGET = P("<D>3'-'<D>4")

GOOD_BRANCH = Branch(
    P("<D>3'.'<D>4"), AtomicPlan([Extract(1), ConstStr("-"), Extract(3)])
)
BAD_BRANCH = Branch(P("<D>3'.'<D>4"), AtomicPlan([Extract(1)]))


def _write(path, branches, target=TARGET, metadata=None):
    compiled = CompiledProgram(UniFiProgram(branches), target, metadata=metadata)
    path.write_text(compiled.dumps(indent=2) + "\n", encoding="utf-8")
    return path


@pytest.fixture
def workdir(tmp_path, monkeypatch):
    """Run the CLI from tmp_path so finding locations are bare names."""
    monkeypatch.chdir(tmp_path)
    return tmp_path


@pytest.fixture
def good_artifact(workdir):
    return _write(workdir / "good.clx.json", [GOOD_BRANCH], metadata={"column": "phone"})


@pytest.fixture
def bad_artifact(workdir):
    return _write(workdir / "bad.clx.json", [BAD_BRANCH], metadata={"column": "phone"})


GOLDEN_BAD_TEXT = """\
UNVERIFIED bad.clx.json
ERROR CLX015 bad.clx.json:branch[1]: plan output <D>3 escapes the target <D>3'-'<D>4: e.g. input '000.0000' can produce '000'
1 finding(s): 1 error
"""


class TestVerifyReports:
    def test_verified_artifact_text_report(self, good_artifact, capsys):
        code = main(["verify", "good.clx.json"])
        assert capsys.readouterr().out == "verified good.clx.json\nOK: no findings\n"
        assert code == 0

    def test_unverified_artifact_text_report(self, bad_artifact, capsys):
        code = main(["verify", "bad.clx.json"])
        assert capsys.readouterr().out == GOLDEN_BAD_TEXT
        assert code == 1  # CLX015 is an error; default --fail-on error

    def test_json_report_carries_verdict_map(self, good_artifact, bad_artifact, capsys):
        code = main(["verify", "good.clx.json", "bad.clx.json", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["format"] == "clx/analysis-report"
        assert payload["verified"] == {"good.clx.json": True, "bad.clx.json": False}
        assert [f["rule"] for f in payload["findings"]] == ["CLX015"]

    def test_guarded_branch_is_unverified_but_warn(self, workdir, capsys):
        _write(
            workdir / "guarded.clx.json",
            [Branch(P("<D>3'.'<D>4"), AtomicPlan([Extract(1)]), guard=ContainsGuard("1"))],
        )
        assert main(["verify", "guarded.clx.json"]) == 0  # WARN < error
        assert "UNVERIFIED guarded.clx.json" in capsys.readouterr().out
        assert main(["verify", "guarded.clx.json", "--fail-on", "warn"]) == 1

    def test_misordered_chain_fails_verify(self, workdir, capsys):
        _write(workdir / "p.clx.json", [GOOD_BRANCH], metadata={"column": "code"})
        _write(
            workdir / "c.clx.json",
            [Branch(P("<U>+'.'<U>+"), AtomicPlan([Extract(1), ConstStr("-"), Extract(3)]))],
            target=P("<U>+'-'<U>+"),
            metadata={"column": "code_transformed"},
        )
        code = main(["verify", "p.clx.json", "c.clx.json"])
        out = capsys.readouterr().out
        assert code == 1
        assert "verified p.clx.json" in out
        assert "verified c.clx.json" in out
        assert "CLX019" in out and "mis-ordered" in out

    def test_broken_pipe_exits_with_sigpipe_code(self, bad_artifact, monkeypatch):
        class _BrokenStdout:
            def write(self, text):
                raise BrokenPipeError(32, "Broken pipe")

            def flush(self):
                pass

        monkeypatch.setattr(sys, "stdout", _BrokenStdout())
        assert main(["verify", "bad.clx.json", "--json"]) == 141


@pytest.fixture
def cached_artifact(workdir, capsys):
    """Compile one artifact into a cache and return its registry entry."""
    (workdir / "dots.csv").write_text(
        "id,phone\n1,555.1234\n2,313.9999\n", encoding="utf-8"
    )
    assert (
        main(
            [
                "compile", "dots.csv", "--column", "phone",
                "--target-pattern", "<D>3'-'<D>4",
                "--output", "phone.clx.json", "--cache-dir", "cache",
            ]
        )
        == 0
    )
    capsys.readouterr()  # drop compile chatter
    entries = ArtifactRegistry(workdir / "cache").entries()
    assert len(entries) == 1
    return entries[0]


class TestFingerprintSpecs:
    def test_verify_accepts_fingerprint_prefix(self, cached_artifact, capsys):
        code = main(
            ["verify", cached_artifact.fingerprint[:12], "--cache-dir", "cache"]
        )
        out = capsys.readouterr().out
        assert code == 0
        # Findings are named after the resolved artifact file on disk.
        assert f"verified {cached_artifact.artifact}" in out

    def test_check_accepts_fingerprint_prefix(self, cached_artifact, capsys):
        code = main(
            ["check", cached_artifact.fingerprint[:12], "--cache-dir", "cache"]
        )
        assert code == 0
        assert "OK: no findings" in capsys.readouterr().out

    def test_unknown_prefix_is_a_clean_error(self, cached_artifact, capsys):
        code = main(["verify", "ffffffffffff", "--cache-dir", "cache"])
        err = capsys.readouterr().err
        assert code == 2
        assert "no registry row" in err

    def test_ambiguous_prefix_is_a_clean_error(self, workdir, cached_artifact, capsys):
        # A second row with the same fingerprint (different target) makes
        # the bare prefix ambiguous.
        registry = ArtifactRegistry(workdir / "cache")
        clone = RegistryEntry(
            key="other-key",
            fingerprint=cached_artifact.fingerprint,
            target="pattern:<D>+",
            artifact=cached_artifact.artifact,
        )
        registry.record(clone)
        code = main(
            ["verify", cached_artifact.fingerprint[:12], "--cache-dir", "cache"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "ambiguous" in err

    def test_nonfile_spec_without_cache_dir_is_an_error(self, workdir, capsys):
        code = main(["verify", "deadbeef"])
        err = capsys.readouterr().err
        assert code == 2
        assert "--cache-dir" in err


class TestRegistryStamping:
    def test_compile_stamps_verified_and_ruleset(self, cached_artifact):
        assert cached_artifact.analysis["verified"] == 1
        assert cached_artifact.analysis["rules"] == RULESET_VERSION

    def test_artifacts_list_shows_verified_column(self, cached_artifact, capsys):
        assert main(["artifacts", "list", "--cache-dir", "cache"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out.splitlines()[0]
        assert " yes " in out

    def test_stale_ruleset_shows_as_stale(self, workdir, cached_artifact, capsys):
        registry = ArtifactRegistry(workdir / "cache")
        old = RegistryEntry(
            **{
                **cached_artifact.to_dict(),
                "key": "old-key",
                "analysis": {**cached_artifact.analysis, "rules": RULESET_VERSION - 1},
            }
        )
        registry.record(old)
        assert main(["artifacts", "list", "--cache-dir", "cache"]) == 0
        out = capsys.readouterr().out
        assert "stale" in out

    def test_pre_analyzer_rows_show_a_dash(self, workdir, cached_artifact, capsys):
        registry = ArtifactRegistry(workdir / "cache")
        bare = RegistryEntry(
            **{**cached_artifact.to_dict(), "key": "bare-key", "analysis": {}}
        )
        registry.record(bare)
        assert main(["artifacts", "list", "--cache-dir", "cache"]) == 0
        lines = capsys.readouterr().out.splitlines()
        verified_column = lines[0].index("verified")
        cells = {line[verified_column:].split()[0] for line in lines[2:]}
        assert "-" in cells


class TestStrictCompile:
    def test_strict_refuses_unverifiable_artifact(self, workdir, capsys):
        # Leaves of widths 1 and 2 admit no narrowing and no conforming
        # cover toward a fixed-width target: the best plan's output
        # '#'<D>+ provably escapes '#'<D>2.
        (workdir / "mixed.csv").write_text(
            "id,val\n1,1.2\n2,12.34\n3,7.8\n4,34.56\n", encoding="utf-8"
        )
        code = main(
            [
                "compile", "mixed.csv", "--column", "val",
                "--target-pattern", "'#'<D>2",
                "--strict", "--output", "strict.clx.json",
            ]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "not verifiable" in err
        assert "CLX015" in err
        assert not (workdir / "strict.clx.json").exists()


class TestApplyCompositionPreflight:
    def _chain(self, workdir):
        _write(workdir / "p.clx.json", [GOOD_BRANCH], metadata={"column": "code"})
        (workdir / "codes.csv").write_text("code\n123.4567\n", encoding="utf-8")

    def test_broken_chain_aborts_apply(self, workdir, capsys):
        self._chain(workdir)
        _write(
            workdir / "c.clx.json",
            [Branch(P("<U>+'.'<U>+"), AtomicPlan([Extract(1), ConstStr("-"), Extract(3)]))],
            target=P("<U>+'-'<U>+"),
            metadata={"column": "code_transformed"},
        )
        code = main(["apply", "p.clx.json", "c.clx.json", "codes.csv"])
        err = capsys.readouterr().err
        assert code == 2
        assert "mis-ordered" in err
        assert "repro-clx verify" in err

    def test_retransform_chain_warns_but_proceeds(self, workdir, capsys):
        # Both columns already exist (the chain's intermediate included),
        # so the in-place pass can actually stream; the re-transform
        # verdict is advisory.
        self._chain(workdir)
        (workdir / "chained.csv").write_text(
            "code,code_transformed\n123.4567,555-1234\n", encoding="utf-8"
        )
        _write(
            workdir / "c.clx.json",
            [Branch(P("<D>3'-'<D>4"), AtomicPlan([ConstStr("#"), Extract(1, 3)]))],
            target=P("'#'<D>3'-'<D>4"),
            metadata={"column": "code_transformed"},
        )
        code = main(
            [
                "apply", "p.clx.json", "c.clx.json", "chained.csv",
                "--in-place", "--output", "out.csv",
            ]
        )
        captured = capsys.readouterr()
        assert code in (0, 1)
        assert "CLX021" in captured.err
        assert (workdir / "out.csv").exists()


class TestSessionVerify:
    def test_session_verify_returns_proof(self):
        from repro.core.session import CLXSession

        session = CLXSession(["555.1234", "313.9999"])
        session.label_target_from_notation("<D>3'-'<D>4")
        report, verified = session.verify()
        assert verified and len(report) == 0
