"""Tests for the MDL scoring of atomic plans (Section 6.3)."""

from __future__ import annotations

import math

import pytest

from repro.dsl.ast import AtomicPlan, ConstStr, Extract
from repro.dsl.mdl import OPERATION_TYPES, expression_cost, plan_description_length


class TestExpressionCost:
    def test_extract_cost_depends_on_source_length(self):
        assert expression_cost(Extract(1), 4) == pytest.approx(2 * math.log2(4))
        assert expression_cost(Extract(1, 3), 8) == pytest.approx(2 * math.log2(8))

    def test_const_cost_depends_on_text_length(self):
        one = expression_cost(ConstStr("x"), 4)
        three = expression_cost(ConstStr("xyz"), 4)
        assert three == pytest.approx(3 * one)

    def test_extract_requires_positive_source_length(self):
        with pytest.raises(ValueError):
            expression_cost(Extract(1), 0)

    def test_unknown_expression_rejected(self):
        with pytest.raises(TypeError):
            expression_cost("nope", 4)


class TestPlanDescriptionLength:
    def test_model_cost_is_length_times_log_m(self):
        plan = AtomicPlan((Extract(1), Extract(2)))
        expected = 2 * math.log2(OPERATION_TYPES) + 2 * (2 * math.log2(5))
        assert plan_description_length(plan, 5) == pytest.approx(expected)

    def test_paper_example_9_preference(self):
        """Extract(1,3) is preferred over Extract(1)+ConstStr('/')+Extract(3)."""
        source_length = 5  # <D>2 / <D>2 / <D>4
        simple = AtomicPlan((Extract(1, 3),))
        verbose = AtomicPlan((Extract(1), ConstStr("/"), Extract(3)))
        assert plan_description_length(simple, source_length) < plan_description_length(
            verbose, source_length
        )

    def test_extracting_a_constant_beats_typing_it(self):
        """A one-token Extract is cheaper than a multi-character ConstStr."""
        extract = AtomicPlan((Extract(2),))
        const = AtomicPlan((ConstStr("abc"),))
        assert plan_description_length(extract, 6) < plan_description_length(const, 6)

    def test_single_char_const_vs_extract(self):
        # For small sources, extracting is still at most as expensive as a
        # printable-character constant (2*log2(source) vs log2(95)).
        extract = AtomicPlan((Extract(1),))
        const = AtomicPlan((ConstStr("-"),))
        assert plan_description_length(extract, 6) < plan_description_length(const, 6)

    def test_longer_plans_cost_more(self):
        short = AtomicPlan((Extract(1, 4),))
        long = AtomicPlan((Extract(1), Extract(2), Extract(3), Extract(4)))
        assert plan_description_length(short, 4) < plan_description_length(long, 4)
