"""Tests for the preview table (Figure 8)."""

from __future__ import annotations

from repro.clustering.profiler import profile
from repro.core.preview import PreviewRow, preview_table, render_preview
from repro.core.transformer import transform_column
from repro.synthesis.synthesizer import synthesize


def _report(phone_values, target):
    result = synthesize(profile(phone_values), target)
    return transform_column(result.program, phone_values, target)


class TestPreviewTable:
    def test_at_most_per_pattern_rows_per_source(self, phone_values, phone_paren_target):
        report = _report(phone_values * 4, phone_paren_target)
        rows = preview_table(report, per_pattern=2)
        by_pattern = {}
        for row in rows:
            by_pattern.setdefault(row.source_pattern, []).append(row)
        assert all(len(group) <= 2 for group in by_pattern.values())

    def test_flagged_rows_labelled(self, phone_values, phone_paren_target):
        report = _report(phone_values, phone_paren_target)
        rows = preview_table(report)
        assert any(row.source_pattern == "(flagged)" for row in rows)

    def test_rows_are_preview_rows(self, phone_values, phone_paren_target):
        report = _report(phone_values, phone_paren_target)
        assert all(isinstance(row, PreviewRow) for row in preview_table(report))

    def test_render_preview_is_aligned_text(self, phone_values, phone_paren_target):
        report = _report(phone_values, phone_paren_target)
        text = render_preview(preview_table(report, per_pattern=1))
        lines = text.splitlines()
        assert lines[0].startswith("source pattern")
        assert len(lines) >= 3
