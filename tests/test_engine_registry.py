"""Tests for the artifact registry manifest (discovery, corruption, gc)."""

from __future__ import annotations

import json

import pytest

from repro.bench.phone import phone_dataset
from repro.core.session import CLXSession
from repro.engine.cache import (
    ArtifactCache,
    ArtifactRegistry,
    RegistryEntry,
    cache_key,
)


@pytest.fixture(scope="module")
def compiled():
    raw, _ = phone_dataset(count=120, format_count=4, seed=13)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    return session.compile(metadata={"column": "phone"})


def _entry(key, fingerprint="fp", artifact="", **extra):
    return RegistryEntry(
        key=key,
        fingerprint=fingerprint,
        target="pattern:<D>3",
        flags={"column": "phone"},
        source="part-0.csv",
        stats={"rows": 10, "clusters": 2},
        artifact=artifact,
        **extra,
    )


class TestRecordAndLookup:
    def test_round_trips_an_entry(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        recorded = registry.record(_entry("k1", artifact="k1.clx.json"))
        assert recorded.created_at > 0
        found = registry.lookup("k1")
        assert found is not None
        assert found.fingerprint == "fp"
        assert found.artifact == "k1.clx.json"
        assert registry.lookup("missing") is None

    def test_lookup_by_fingerprint_finds_all_targets(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        registry.record(_entry("k1", fingerprint="colA"))
        registry.record(_entry("k2", fingerprint="colA"))
        registry.record(_entry("k3", fingerprint="colB"))
        assert {entry.key for entry in registry.lookup_fingerprint("colA")} == {"k1", "k2"}
        assert registry.lookup_fingerprint("colC") == []

    def test_entries_sorted_stably(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        registry.record(_entry("kb", created_at=2.0))
        registry.record(_entry("ka", created_at=2.0))
        registry.record(_entry("kc", created_at=1.0))
        assert [entry.key for entry in registry.entries()] == ["kc", "ka", "kb"]


class TestCorruptionDegradesToMiss:
    @pytest.mark.parametrize(
        "payload",
        [
            "",  # truncated to nothing
            '{"format": "clx-artifact-registry", "entries": {',  # torn write
            "\x00\x01 garbage",
            '{"format": "something-else", "entries": {}}',
            '{"format": "clx-artifact-registry", "entries": []}',
            "[1, 2, 3]",
        ],
    )
    def test_bad_manifest_reads_as_empty(self, tmp_path, payload):
        registry = ArtifactRegistry(tmp_path)
        registry.path.write_text(payload, encoding="utf-8")
        assert registry.entries() == []
        assert registry.lookup("anything") is None
        assert registry.lookup_fingerprint("fp") == []

    def test_non_utf8_manifest_reads_as_empty(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        registry.path.write_bytes(b"\xff\xfe broken")
        assert registry.entries() == []

    def test_one_bad_row_never_poisons_the_rest(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        registry.record(_entry("good"))
        payload = json.loads(registry.path.read_text(encoding="utf-8"))
        payload["entries"]["bad"] = {"created_at": "not-a-number"}
        registry.path.write_text(json.dumps(payload), encoding="utf-8")
        assert [entry.key for entry in registry.entries()] == ["good"]

    def test_record_rebuilds_a_corrupt_manifest(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        registry.path.write_text("{torn", encoding="utf-8")
        registry.record(_entry("k1"))
        assert [entry.key for entry in registry.entries()] == ["k1"]

    def test_cache_hit_falls_back_to_store_when_manifest_is_garbage(
        self, tmp_path, compiled
    ):
        cache = ArtifactCache(tmp_path)
        key = cache_key("fp", "pattern:<D>3")
        cache.store(key, compiled)
        cache.registry.path.write_text("garbage", encoding="utf-8")
        loaded = cache.load_registered(key)
        assert loaded is not None
        assert loaded.dumps() == compiled.dumps()

    def test_dangling_manifest_row_falls_back_to_store(self, tmp_path, compiled):
        cache = ArtifactCache(tmp_path)
        key = cache_key("fp", "pattern:<D>3")
        cache.store(key, compiled)
        cache.registry.record(_entry(key, artifact="vanished.clx.json"))
        loaded = cache.load_registered(key)
        assert loaded is not None


class TestConcurrentWriters:
    def test_interleaved_records_do_not_clobber_each_other(self, tmp_path):
        # Two registry handles over the same directory, recording
        # different keys in turn: the read-merge-write discipline keeps
        # both rows, and the atomic rename means no torn manifest is
        # ever observable.
        writer_a = ArtifactRegistry(tmp_path)
        writer_b = ArtifactRegistry(tmp_path)
        writer_a.record(_entry("from-a"))
        writer_b.record(_entry("from-b"))
        writer_a.record(_entry("from-a-again"))
        keys = {entry.key for entry in ArtifactRegistry(tmp_path).entries()}
        assert keys == {"from-a", "from-b", "from-a-again"}

    def test_writes_leave_no_scratch_files(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        registry.record(_entry("k1"))
        registry.record(_entry("k2"))
        assert [path.name for path in tmp_path.glob("*.tmp")] == []


class TestGc:
    def test_prunes_dangling_rows_and_unreferenced_files(self, tmp_path, compiled):
        cache = ArtifactCache(tmp_path)
        kept_key = cache_key("fp-kept", "t")
        cache.store_registered(kept_key, compiled, fingerprint="fp-kept", target="t")
        # An artifact file no manifest row references...
        orphan = tmp_path / "orphan.clx.json"
        orphan.write_text(compiled.dumps(), encoding="utf-8")
        # ...and a manifest row whose artifact file is gone.
        cache.registry.record(_entry("dangling", artifact="gone.clx.json"))

        report = cache.registry.gc()
        assert report["removed_files"] == ["orphan.clx.json"]
        assert report["removed_entries"] == ["dangling"]
        assert not orphan.exists()
        assert cache.load_registered(kept_key) is not None
        assert cache.registry.lookup(kept_key) is not None

    def test_never_deletes_a_file_referenced_by_a_newer_manifest_row(
        self, tmp_path, compiled, monkeypatch
    ):
        # A concurrent compile records its manifest row between gc's
        # directory scan and its delete decision.  gc re-reads the
        # manifest at decision time, so the newer row's artifact
        # survives.
        cache = ArtifactCache(tmp_path)
        key = cache_key("fp-new", "t")
        path = cache.store(key, compiled)  # file exists, row not yet written

        registry = cache.registry
        real_read = ArtifactRegistry._read_manifest

        def read_after_concurrent_record(self):
            # Simulate the other session winning the race: its row lands
            # right before gc re-reads.
            monkeypatch.setattr(ArtifactRegistry, "_read_manifest", real_read)
            real_read(self)  # plain read (still no row) — the stale view
            ArtifactRegistry(tmp_path).record(
                _entry(key, artifact=path.name)
            )
            return real_read(self)

        monkeypatch.setattr(
            ArtifactRegistry, "_read_manifest", read_after_concurrent_record
        )
        report = registry.gc()
        assert report["removed_files"] == []
        assert path.exists()
        assert ArtifactRegistry(tmp_path).lookup(key) is not None

    def test_gc_on_an_empty_or_corrupt_directory_is_a_noop(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        assert registry.gc() == {"removed_entries": [], "removed_files": []}
        registry.path.write_text("{torn", encoding="utf-8")
        assert registry.gc() == {"removed_entries": [], "removed_files": []}

    def test_gc_never_wipes_a_pre_registry_cache(self, tmp_path, compiled):
        # A cache populated through plain store() has artifacts but no
        # manifest: "no readable manifest" must not read as "nothing is
        # referenced".
        cache = ArtifactCache(tmp_path)
        key = cache_key("fp", "t")
        path = cache.store(key, compiled)
        assert not cache.registry.path.exists()
        assert cache.registry.gc() == {"removed_entries": [], "removed_files": []}
        assert path.exists()
        # Same protection when the manifest is corrupt rather than absent.
        cache.registry.path.write_text("garbage", encoding="utf-8")
        assert cache.registry.gc() == {"removed_entries": [], "removed_files": []}
        assert path.exists()


class TestLastUsedAndKeepDays:
    def test_registered_hit_stamps_last_used(self, tmp_path, compiled):
        cache = ArtifactCache(tmp_path)
        key = cache_key("fp-hit", "t")
        cache.store_registered(key, compiled, fingerprint="fp-hit", target="t")
        before = cache.registry.lookup(key)
        assert before is not None and before.last_used_at == 0.0
        assert before.effective_last_used == before.created_at

        assert cache.load_registered(key) is not None
        after = cache.registry.lookup(key)
        assert after is not None and after.last_used_at >= before.created_at
        assert after.effective_last_used == after.last_used_at

    def test_touch_unknown_key_is_a_noop(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        registry.touch("missing")  # must not create a row or a manifest
        assert registry.lookup("missing") is None

    def test_keep_days_evicts_stale_rows_and_files(self, tmp_path, compiled):
        cache = ArtifactCache(tmp_path)
        stale_key = cache_key("fp-stale", "t")
        fresh_key = cache_key("fp-fresh", "t")
        stale_path = cache.store_registered(
            stale_key, compiled, fingerprint="fp-stale", target="t"
        )
        cache.store_registered(fresh_key, compiled, fingerprint="fp-fresh", target="t")
        # Age the stale row ten days into the past (created, never used).
        registry = cache.registry
        old = registry.lookup(stale_key)
        registry.record(
            RegistryEntry(**{**old.to_dict(), "created_at": old.created_at - 10 * 86_400})
        )
        # A hit keeps the fresh row alive whatever its creation time.
        assert cache.load_registered(fresh_key) is not None

        report = registry.gc(keep_days=7)
        assert report["removed_entries"] == [stale_key]
        assert report["removed_files"] == [stale_path.name]
        assert not stale_path.exists()
        assert registry.lookup(stale_key) is None
        assert cache.load_registered(fresh_key) is not None

    def test_recent_use_shields_an_old_row(self, tmp_path, compiled):
        cache = ArtifactCache(tmp_path)
        key = cache_key("fp-old", "t")
        cache.store_registered(key, compiled, fingerprint="fp-old", target="t")
        registry = cache.registry
        old = registry.lookup(key)
        registry.record(
            RegistryEntry(**{**old.to_dict(), "created_at": old.created_at - 30 * 86_400})
        )
        # The hit stamps last_used_at, which outranks the old created_at.
        assert cache.load_registered(key) is not None
        report = registry.gc(keep_days=7)
        assert report == {"removed_entries": [], "removed_files": []}
        assert cache.load_registered(key) is not None

    def test_keep_days_zero_evicts_everything_unused_now(self, tmp_path, compiled):
        cache = ArtifactCache(tmp_path)
        key = cache_key("fp-now", "t")
        cache.store_registered(key, compiled, fingerprint="fp-now", target="t")
        registry = cache.registry
        old = registry.lookup(key)
        registry.record(RegistryEntry(**{**old.to_dict(), "created_at": old.created_at - 1}))
        report = registry.gc(keep_days=0)
        assert report["removed_entries"] == [key]

    def test_negative_keep_days_is_rejected(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        with pytest.raises(Exception, match="keep_days"):
            registry.gc(keep_days=-1)

    def test_pre_stamp_rows_survive_decoding(self, tmp_path):
        # Manifests written before last_used_at existed decode with 0.0.
        registry = ArtifactRegistry(tmp_path)
        registry.record(_entry("k-old", artifact=""))
        payload = json.loads(registry.path.read_text(encoding="utf-8"))
        del payload["entries"]["k-old"]["last_used_at"]
        registry.path.write_text(json.dumps(payload), encoding="utf-8")
        entry = registry.lookup("k-old")
        assert entry is not None and entry.last_used_at == 0.0

    def test_hit_survives_an_unwritable_cache_directory(
        self, tmp_path, compiled, monkeypatch
    ):
        # Stamping is advisory: a read-only shared cache directory must
        # not turn a manifest-resolved hit into a crash.
        cache = ArtifactCache(tmp_path)
        key = cache_key("fp-ro", "t")
        cache.store_registered(key, compiled, fingerprint="fp-ro", target="t")

        def denied(self):
            raise OSError(13, "Permission denied")

        monkeypatch.setattr(ArtifactRegistry, "_manifest_lock", denied)
        assert cache.load_registered(key) is not None

    def test_repeat_hits_within_the_interval_skip_the_rewrite(
        self, tmp_path, compiled
    ):
        cache = ArtifactCache(tmp_path)
        key = cache_key("fp-debounce", "t")
        cache.store_registered(key, compiled, fingerprint="fp-debounce", target="t")
        assert cache.load_registered(key) is not None
        first = cache.registry.lookup(key).last_used_at
        assert first > 0
        assert cache.load_registered(key) is not None
        assert cache.registry.lookup(key).last_used_at == first
