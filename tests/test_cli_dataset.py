"""CLI tests for partitioned-dataset inputs and the artifacts command.

Golden-file coverage for the partition-preserving ``apply --output-dir``
mode and the ``artifacts list`` output (stable ordering, machine-readable
``--json``), plus the glob/multi-path behavior of ``profile``/``compile``.
"""

from __future__ import annotations

import csv
import json

import pytest

from repro.cli import main
from repro.engine.compiled import CompiledProgram

TARGET = "<D>3'-'<D>3'-'<D>4"


def _write_csv(path, header, rows):
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


@pytest.fixture
def parts_dir(tmp_path):
    data = tmp_path / "data"
    data.mkdir()
    _write_csv(
        data / "part-0.csv",
        ["id", "phone"],
        [[0, "(734) 645-8397"], [1, "734.236.3466"]],
    )
    _write_csv(
        data / "part-1.csv",
        ["id", "phone"],
        [[2, "734-422-8073"], [3, "(734)586-7252"]],
    )
    return data


@pytest.fixture
def artifact(parts_dir, tmp_path):
    path = tmp_path / "phone.clx.json"
    code = main(
        [
            "compile", str(parts_dir / "part-*.csv"), "--column", "phone",
            "--target-pattern", TARGET, "--output", str(path),
        ]
    )
    assert code == 0
    return path


class TestProfileDataset:
    def test_glob_profiles_all_parts(self, parts_dir, capsys):
        assert main(["profile", str(parts_dir / "part-*.csv"), "--column", "phone"]) == 0
        out = capsys.readouterr().out
        # Four distinct formats, one row each, across the two parts.
        assert out.count("1     ") == 4 or "734-422-8073" in out

    def test_multiple_paths_and_workers(self, parts_dir, capsys):
        code = main(
            [
                "profile",
                str(parts_dir / "part-0.csv"),
                str(parts_dir / "part-1.csv"),
                "--column", "phone", "--workers", "2",
            ]
        )
        assert code == 0

    def test_mixed_csv_jsonl_partitions(self, parts_dir, capsys):
        rows = [{"id": 4, "phone": "906-555-0000"}]
        with (parts_dir / "part-2.jsonl").open("w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")
        assert main(["profile", str(parts_dir / "part-*"), "--column", "phone"]) == 0
        assert "906-555-0000" in capsys.readouterr().out

    def test_part_missing_the_column_is_named(self, parts_dir, capsys):
        _write_csv(parts_dir / "part-9.csv", ["id", "fax"], [[9, "x"]])
        code = main(["profile", str(parts_dir / "part-*.csv"), "--column", "phone"])
        assert code == 2
        err = capsys.readouterr().err
        assert "part-9.csv" in err and "not found" in err

    def test_unmatched_glob_is_an_error(self, tmp_path, capsys):
        code = main(["profile", str(tmp_path / "nope-*.csv"), "--column", "x"])
        assert code == 2
        assert "matches no file" in capsys.readouterr().err


class TestCompileDataset:
    def test_artifact_records_the_dataset_source(self, artifact):
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert payload["metadata"]["column"] == "phone"
        assert payload["metadata"]["source_csv"] == "part-0.csv (+1 more)"
        assert payload["metadata"]["source_rows"] == 4
        assert len(CompiledProgram.loads(artifact.read_text(encoding="utf-8"))) >= 1


class TestApplySpliced:
    def test_glob_splices_parts_in_stable_order(self, parts_dir, artifact, tmp_path):
        out = tmp_path / "all.csv"
        code = main(
            ["apply", str(artifact), str(parts_dir / "part-*.csv"), "--output", str(out)]
        )
        assert code == 0
        assert out.read_text(encoding="utf-8") == (
            "id,phone,phone_transformed\n"
            "0,(734) 645-8397,734-645-8397\n"
            "1,734.236.3466,734-236-3466\n"
            "2,734-422-8073,734-422-8073\n"
            "3,(734)586-7252,734-586-7252\n"
        )

    def test_extra_input_flag_adds_partitions(self, parts_dir, artifact, tmp_path):
        out = tmp_path / "all.csv"
        code = main(
            [
                "apply", str(artifact), str(parts_dir / "part-0.csv"),
                "--input", str(parts_dir / "part-1.csv"),
                "--output", str(out),
            ]
        )
        assert code == 0
        assert out.read_text(encoding="utf-8").count("\n") == 5

    def test_mismatched_partition_headers_fail_loudly(self, parts_dir, artifact, capsys):
        _write_csv(parts_dir / "part-5.csv", ["phone", "id"], [["906-555-1234", 5]])
        code = main(["apply", str(artifact), str(parts_dir / "part-*.csv")])
        assert code == 2
        err = capsys.readouterr().err
        assert "part-5.csv" in err and "header" in err

    def test_jsonl_partition_splices_with_csv_partitions(
        self, parts_dir, artifact, tmp_path
    ):
        (parts_dir / "part-2.jsonl").write_text(
            '{"id": 4, "phone": "906.555.0000"}\n', encoding="utf-8"
        )
        out = tmp_path / "all.csv"
        code = main(
            ["apply", str(artifact), str(parts_dir / "part-*"), "--output", str(out)]
        )
        assert code == 0
        assert out.read_text(encoding="utf-8").endswith(
            "3,(734)586-7252,734-586-7252\n4,906.555.0000,906-555-0000\n"
        )

    def test_jsonl_partition_with_unknown_key_is_named(
        self, parts_dir, artifact, tmp_path, capsys
    ):
        (parts_dir / "part-2.jsonl").write_text(
            '{"id": 4, "phone": "x"}\n{"id": 5, "phone": "y", "fax": "z"}\n',
            encoding="utf-8",
        )
        code = main(
            [
                "apply", str(artifact), str(parts_dir / "part-*"),
                "--output", str(tmp_path / "all.csv"),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "part-2.jsonl line 2" in err and "'fax'" in err

    def test_output_onto_an_input_partition_is_refused(
        self, parts_dir, artifact, capsys
    ):
        # The glob resolves the destination as an input: opening the
        # sink would truncate source data before it is read.
        before = (parts_dir / "part-1.csv").read_text(encoding="utf-8")
        code = main(
            [
                "apply", str(artifact), str(parts_dir / "part-*.csv"),
                "--output", str(parts_dir / "part-1.csv"),
            ]
        )
        assert code == 2
        assert "destroy" in capsys.readouterr().err
        assert (parts_dir / "part-1.csv").read_text(encoding="utf-8") == before

    def test_output_and_output_dir_are_exclusive(self, parts_dir, artifact, tmp_path, capsys):
        code = main(
            [
                "apply", str(artifact), str(parts_dir / "part-*.csv"),
                "--output", str(tmp_path / "x.csv"),
                "--output-dir", str(tmp_path / "out"),
            ]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestApplyOutputDir:
    def test_golden_partition_preserving_outputs(self, parts_dir, artifact, tmp_path):
        outdir = tmp_path / "cleaned"
        code = main(
            [
                "apply", str(artifact), str(parts_dir / "part-*.csv"),
                "--output-dir", str(outdir),
            ]
        )
        assert code == 0
        assert sorted(
            path.name for path in outdir.iterdir() if not path.name.startswith(".")
        ) == [
            "part-0.csv",
            "part-1.csv",
        ]
        assert (outdir / "part-0.csv").read_text(encoding="utf-8") == (
            "id,phone,phone_transformed\n"
            "0,(734) 645-8397,734-645-8397\n"
            "1,734.236.3466,734-236-3466\n"
        )
        assert (outdir / "part-1.csv").read_text(encoding="utf-8") == (
            "id,phone,phone_transformed\n"
            "2,734-422-8073,734-422-8073\n"
            "3,(734)586-7252,734-586-7252\n"
        )

    def test_jsonl_format_swaps_the_extension(self, parts_dir, artifact, tmp_path):
        outdir = tmp_path / "cleaned"
        code = main(
            [
                "apply", str(artifact), str(parts_dir / "part-*.csv"),
                "--output-dir", str(outdir), "--format", "jsonl",
            ]
        )
        assert code == 0
        assert sorted(
            path.name for path in outdir.iterdir() if not path.name.startswith(".")
        ) == [
            "part-0.jsonl",
            "part-1.jsonl",
        ]
        first = [
            json.loads(line)
            for line in (outdir / "part-0.jsonl").read_text(encoding="utf-8").splitlines()
        ]
        assert first == [
            {"id": "0", "phone": "(734) 645-8397", "phone_transformed": "734-645-8397"},
            {"id": "1", "phone": "734.236.3466", "phone_transformed": "734-236-3466"},
        ]

    def test_dotted_stem_swaps_only_the_final_extension(
        self, parts_dir, artifact, tmp_path
    ):
        # Regression: `part.2024.csv` must keep its dotted stem —
        # swapping anything but the final extension would collapse
        # date-stamped partitions onto each other.
        (parts_dir / "part-0.csv").rename(parts_dir / "part.2024.csv")
        (parts_dir / "part-1.csv").rename(parts_dir / "part.2025.csv")
        outdir = tmp_path / "cleaned"
        code = main(
            [
                "apply", str(artifact), str(parts_dir / "part*.csv"),
                "--output-dir", str(outdir), "--format", "jsonl",
            ]
        )
        assert code == 0
        assert sorted(
            path.name for path in outdir.iterdir() if not path.name.startswith(".")
        ) == [
            "part.2024.jsonl",
            "part.2025.jsonl",
        ]

    def test_refuses_to_overwrite_an_input_partition(self, parts_dir, artifact, capsys):
        code = main(
            [
                "apply", str(artifact), str(parts_dir / "part-*.csv"),
                "--output-dir", str(parts_dir),
            ]
        )
        assert code == 2
        assert "overwrite" in capsys.readouterr().err

    def test_in_place_columns_work_per_partition(self, parts_dir, artifact, tmp_path):
        outdir = tmp_path / "cleaned"
        code = main(
            [
                "apply", str(artifact), str(parts_dir / "part-*.csv"),
                "--output-dir", str(outdir), "--in-place",
            ]
        )
        assert code == 0
        assert (outdir / "part-1.csv").read_text(encoding="utf-8") == (
            "id,phone\n2,734-422-8073\n3,734-586-7252\n"
        )


class TestArtifactsCommand:
    @pytest.fixture
    def cache_dir(self, parts_dir, tmp_path):
        cache = tmp_path / "cache"
        for target, name in ((TARGET, "a"), ("'('<D>3')'' '<D>3'-'<D>4", "b")):
            code = main(
                [
                    "compile", str(parts_dir / "part-*.csv"), "--column", "phone",
                    "--target-pattern", target,
                    "--output", str(tmp_path / f"{name}.clx.json"),
                    "--cache-dir", str(cache),
                ]
            )
            assert code == 0
        return cache

    def test_list_shows_fingerprint_target_and_stats(self, cache_dir, capsys):
        assert main(["artifacts", "list", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out and "target" in out
        assert f"pattern:{TARGET}" in out
        assert "part-0.csv (+1 more)" in out

    def test_list_json_is_machine_readable_and_stably_ordered(self, cache_dir, capsys):
        assert main(["artifacts", "list", "--cache-dir", str(cache_dir), "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert len(entries) == 2
        for entry in entries:
            assert set(entry) == {
                "key", "fingerprint", "target", "flags", "source",
                "stats", "created_at", "last_used_at", "artifact",
                "analysis",
            }
            assert entry["stats"] == {"rows": 4, "clusters": 4}
            assert entry["flags"]["column"] == "phone"
            # The finding summary the compile-time analyzer recorded,
            # plus the verified-proof stamp and its ruleset version.
            assert set(entry["analysis"]) == {
                "info", "warn", "error", "verified", "rules"
            }
            assert entry["analysis"]["error"] == 0
            assert entry["analysis"]["verified"] == 1
        # Stable ordering: (created_at, key) ascending.
        marks = [(entry["created_at"], entry["key"]) for entry in entries]
        assert marks == sorted(marks)
        # Both compiles profiled the same column: same fingerprint,
        # different targets.
        assert entries[0]["fingerprint"] == entries[1]["fingerprint"]
        assert entries[0]["target"] != entries[1]["target"]

    def test_gc_prunes_and_reports(self, cache_dir, capsys):
        orphan = cache_dir / "orphan.clx.json"
        orphan.write_text("{}", encoding="utf-8")
        assert main(["artifacts", "gc", "--cache-dir", str(cache_dir), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report == {"removed_entries": [], "removed_files": ["orphan.clx.json"]}
        assert not orphan.exists()
        # The registered artifacts survived.
        assert main(["artifacts", "list", "--cache-dir", str(cache_dir), "--json"]) == 0
        assert len(json.loads(capsys.readouterr().out)) == 2

    def test_gc_keep_days_evicts_by_age(self, cache_dir, capsys):
        # Age one row far into the past, then evict everything unused
        # for a week; the other (fresh) row must survive.
        from repro.engine.cache import ArtifactRegistry, RegistryEntry

        registry = ArtifactRegistry(cache_dir)
        first, second = registry.entries()
        registry.record(
            RegistryEntry(
                **{**first.to_dict(), "created_at": first.created_at - 30 * 86_400}
            )
        )
        code = main(
            [
                "artifacts", "gc", "--cache-dir", str(cache_dir),
                "--keep-days", "7", "--json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["removed_entries"] == [first.key]
        assert report["removed_files"] == [first.artifact]
        assert main(["artifacts", "list", "--cache-dir", str(cache_dir), "--json"]) == 0
        remaining = json.loads(capsys.readouterr().out)
        assert [entry["key"] for entry in remaining] == [second.key]

    def test_list_rejects_keep_days(self, cache_dir, capsys):
        code = main(
            [
                "artifacts", "list", "--cache-dir", str(cache_dir),
                "--keep-days", "7",
            ]
        )
        assert code == 2
        assert "only applies to 'artifacts gc'" in capsys.readouterr().err

    def test_gc_negative_keep_days_is_rejected(self, tmp_path, capsys):
        code = main(
            [
                "artifacts", "gc", "--cache-dir", str(tmp_path / "cache"),
                "--keep-days", "-3",
            ]
        )
        assert code == 2
        assert "--keep-days" in capsys.readouterr().err

    def test_registry_hit_across_two_separate_runs(self, parts_dir, tmp_path, capsys):
        cache = tmp_path / "cache"
        base = [
            "compile", str(parts_dir / "part-*.csv"), "--column", "phone",
            "--target-pattern", TARGET, "--cache-dir", str(cache),
        ]
        assert main(base + ["--output", str(tmp_path / "one.clx.json")]) == 0
        assert "cached artifact" in capsys.readouterr().err
        # A second, separate session run resolves through registry.json.
        assert (cache / "registry.json").is_file()
        assert main(base + ["--output", str(tmp_path / "two.clx.json")]) == 0
        assert "cache hit" in capsys.readouterr().err
        assert (tmp_path / "one.clx.json").read_text() == (
            tmp_path / "two.clx.json"
        ).read_text()
