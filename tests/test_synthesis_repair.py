"""Tests for program repair (Section 6.4)."""

from __future__ import annotations

import pytest

from repro.clustering.profiler import profile
from repro.core.transformer import transform_column
from repro.patterns.matching import pattern_of_string
from repro.patterns.parse import parse_pattern
from repro.synthesis.repair import oracle_repair, repair_options
from repro.synthesis.synthesizer import synthesize


class TestRepairOptions:
    def test_options_listed_default_first(self, small_phone_column, phone_target):
        raw, _expected = small_phone_column
        result = synthesize(profile(raw), phone_target)
        source = result.source_patterns[0]
        options = repair_options(result, source)
        assert options.default == result.candidates[source][0]
        assert len(options) == len(result.candidates[source])
        assert options.alternatives == tuple(result.candidates[source][1:])

    def test_unknown_source_raises(self, small_phone_column, phone_target):
        raw, _expected = small_phone_column
        result = synthesize(profile(raw), phone_target)
        with pytest.raises(KeyError):
            repair_options(result, parse_pattern("<U>9"))


class TestOracleRepair:
    def test_repair_makes_phone_study_data_fully_correct(self, small_phone_column, phone_target):
        """MDL sometimes prefers a compact-but-wrong plan (e.g. reusing the
        prefix for the area code); the completeness of alignment guarantees
        a correct candidate exists and oracle repair finds it."""
        raw, expected = small_phone_column
        result = synthesize(profile(raw), phone_target)
        repaired, repairs = oracle_repair(result, expected)
        assert repairs >= 0
        report = transform_column(repaired.program, raw, phone_target)
        assert [report.outputs[i] for i in range(len(raw))] == [expected[v] for v in raw]

    def test_date_ambiguity_is_repaired(self):
        """The DD/MM vs MM-DD ambiguity of Section 6.4 is fixed by repair."""
        raw = ["31/12/2017", "25/06/2018", "12-31-2017"]
        expected = {
            "31/12/2017": "12-31-2017",
            "25/06/2018": "06-25-2018",
            "12-31-2017": "12-31-2017",
        }
        target = parse_pattern("<D>2'-'<D>2'-'<D>4")
        result = synthesize(profile(raw), target)
        repaired, repairs = oracle_repair(result, expected)
        report = transform_column(repaired.program, raw, target)
        assert [report.outputs[0], report.outputs[1]] == ["12-31-2017", "06-25-2018"]
        # The swap cannot be inferred from syntax alone, so at least one
        # branch had to be repaired (the default guesses the identity order).
        assert repairs >= 1

    def test_names_task_repaired_to_correct_outputs(self, employee_names):
        expected = {
            "Dr. Eran Yahav": "Yahav, E.",
            "Fisher, K.": "Fisher, K.",
            "Bill Gates, Sr.": "Gates, B.",
            "Oege de Moor": "Moor, O.",
        }
        target = pattern_of_string("Fisher, K.")
        from repro.patterns.generalize import generalize_quantifier

        target = generalize_quantifier(target)
        result = synthesize(profile(employee_names), target)
        repaired, _repairs = oracle_repair(result, expected)
        report = transform_column(repaired.program, employee_names, target)
        correct = sum(
            1 for raw, out in zip(report.inputs, report.outputs) if out == expected[raw]
        )
        # Every name whose pattern is covered should come out right after
        # repair; "Oege de Moor" (lowercase particle) may stay uncovered.
        assert correct >= 3

    def test_sources_without_matching_examples_left_alone(self, small_phone_column, phone_target):
        raw, _expected = small_phone_column
        result = synthesize(profile(raw), phone_target)
        repaired, repairs = oracle_repair(result, {})
        assert repairs == 0
        assert repaired.program == result.program
