"""Analyzer soundness over the full benchmark suite.

The property tying the analyzer to the dispatch semantics: a program is
reachability-clean exactly when every branch is load-bearing on the
exemplars it was synthesized from.

- Forward: the synthesizer's output for every suite task has no
  CLX001/CLX002/CLX010 findings, and deleting *any* branch changes the
  outputs or the matched patterns on the task's own inputs.
- Backward (seeded mutation): appending a duplicate of an unguarded
  branch makes the analyzer flag exactly that arm as shadowed — and
  deleting the flagged arm changes nothing, i.e. the analyzer's "dead"
  verdict is semantically exact.

Plus the release gate itself: one ``check --fail-on error`` run over all
47 compiled artifacts exits 0.
"""

from __future__ import annotations

import pytest

from repro.analysis import Severity, analyze_program
from repro.bench.suite import benchmark_suite
from repro.cli import main
from repro.core.session import CLXSession
from repro.dsl.ast import Branch, UniFiProgram
from repro.engine.compiled import CompiledProgram
from repro.util.errors import SynthesisError

DEAD_ARM_RULES = ("CLX001", "CLX002", "CLX010")

TASKS = benchmark_suite()


@pytest.fixture(scope="module")
def suite_programs():
    """(task, compiled, run report) for every synthesizable suite task.

    Synthesis over the whole suite runs once per module; the tests below
    slice it different ways.
    """
    programs = []
    for task in TASKS:
        session = CLXSession(task.inputs)
        session.label_target(task.target_pattern())
        try:
            report = session.transform()
        except SynthesisError:
            continue
        programs.append((task, session.compile(), report))
    assert programs, "no suite task synthesized a program"
    return programs


def _pruned(compiled, index):
    branches = compiled.program.branches
    return CompiledProgram(
        UniFiProgram(branches[:index] + branches[index + 1 :]), compiled.target
    )


def _same_behavior(candidate, baseline, inputs):
    run = candidate.run(inputs)
    return (
        run.outputs == baseline.outputs
        and run.matched_pattern == baseline.matched_pattern
    )


class TestEveryBranchLoadBearing:
    def test_suite_programs_are_reachability_clean(self, suite_programs):
        for task, compiled, _ in suite_programs:
            report = analyze_program(compiled, name=task.task_id, probe=False)
            dead = [f for f in report.findings if f.rule_id in DEAD_ARM_RULES]
            assert dead == [], f"{task.task_id}: analyzer reports dead arms"

    def test_deleting_any_branch_changes_the_task_outputs(self, suite_programs):
        for task, compiled, baseline in suite_programs:
            for index in range(len(compiled.program.branches)):
                assert not _same_behavior(
                    _pruned(compiled, index), baseline, task.inputs
                ), (
                    f"{task.task_id}: branch[{index + 1}] is analyzer-live "
                    "but deleting it changes nothing on the task inputs"
                )


class TestSeededDeadArm:
    def _mutant(self, compiled):
        """Append a duplicate of the first unguarded branch, if any."""
        branches = compiled.program.branches
        for branch in branches:
            if branch.guard is None:
                duplicate = Branch(branch.pattern, branch.plan)
                return CompiledProgram(
                    UniFiProgram(branches + (duplicate,)), compiled.target
                )
        return None

    def test_duplicated_branch_is_flagged_and_semantically_dead(
        self, suite_programs
    ):
        exercised = 0
        for task, compiled, _ in suite_programs:
            mutant = self._mutant(compiled)
            if mutant is None:
                continue
            exercised += 1
            report = analyze_program(mutant, name=task.task_id, probe=False)
            dead_locations = [
                f.location
                for f in report.findings
                if f.rule_id in ("CLX001", "CLX002")
            ]
            last = f"{task.task_id}:branch[{len(mutant.program.branches)}]"
            assert last in dead_locations, (
                f"{task.task_id}: duplicated arm not flagged dead"
            )
            # The analyzer's verdict is exact: deleting the flagged arm
            # is a no-op on the task's own inputs.
            baseline = mutant.run(task.inputs)
            pruned = _pruned(mutant, len(mutant.program.branches) - 1)
            assert _same_behavior(pruned, baseline, task.inputs)
        assert exercised, "no suite program has an unguarded branch"


class TestSuiteGate:
    def test_all_artifacts_pass_check_fail_on_error(
        self, suite_programs, tmp_path, capsys
    ):
        paths = []
        for task, compiled, _ in suite_programs:
            path = tmp_path / f"{task.task_id}.clx.json"
            path.write_text(compiled.dumps())
            paths.append(str(path))
        exit_code = main(["check", *paths, "--fail-on", "error", "--no-probe"])
        captured = capsys.readouterr()
        assert exit_code == 0, captured.out


class TestSessionAnalyzeApi:
    def test_session_analyze_threads_the_session_hierarchy(self):
        session = CLXSession(["555.1234", "555.9999", "not a phone"])
        session.label_target_from_notation("<D>3'-'<D>4")
        session.transform()
        report = session.analyze(name="interactive")
        residual = [f for f in report.findings if f.rule_id == "CLX012"]
        assert residual, "session hierarchy not threaded into coverage audit"
        assert residual[0].location == "interactive"
        assert report.max_severity() >= Severity.WARN
