"""Tests for leaf cluster construction (tokenization phase, Section 4.1)."""

from __future__ import annotations

from repro.clustering.cluster import PatternCluster, initial_clusters
from repro.patterns.matching import matches
from repro.patterns.parse import parse_pattern


class TestInitialClusters:
    def test_strings_with_same_pattern_share_a_cluster(self, phone_values):
        clusters = initial_clusters(phone_values + ["999-111-2222"])
        by_notation = {c.pattern.notation(): c for c in clusters}
        dashes = by_notation["<D>3'-'<D>3'-'<D>4"]
        assert dashes.size == 2

    def test_duplicates_are_counted_not_collapsed(self):
        clusters = initial_clusters(["ab", "ab", "ab"])
        assert len(clusters) == 1
        assert clusters[0].size == 3

    def test_clusters_sorted_by_size_descending(self):
        clusters = initial_clusters(["1", "2", "3", "ab", "cd", "x-y"])
        sizes = [c.size for c in clusters]
        assert sizes == sorted(sizes, reverse=True)

    def test_every_value_matches_its_cluster_pattern(self, phone_values):
        clusters = initial_clusters(phone_values * 3)
        for cluster in clusters:
            for value in cluster.values:
                assert matches(value, cluster.pattern)

    def test_empty_input_gives_no_clusters(self):
        assert initial_clusters([]) == []

    def test_empty_strings_form_their_own_cluster(self):
        clusters = initial_clusters(["", "", "a"])
        empties = [c for c in clusters if len(c.pattern) == 0]
        assert len(empties) == 1 and empties[0].size == 2

    def test_constant_promotion_on_shared_prefix(self):
        values = [f"Dr. {name}" for name in ("Adams", "Brown", "Clark", "Davis")]
        clusters = initial_clusters(values)
        assert len(clusters) == 1  # all surnames here share the <U><L>4 shape
        notation = clusters[0].pattern.notation()
        assert notation.startswith("'D''r''.'")
        assert notation.endswith("<U><L>4")

    def test_constant_promotion_can_be_disabled(self):
        values = [f"Dr. {name}" for name in ("Adams", "Brown", "Clark", "Davis")]
        clusters = initial_clusters(values, discover_constants=False)
        for cluster in clusters:
            assert cluster.pattern.notation().startswith("<U><L>'.'")

    def test_promotion_keeps_values_matching(self):
        values = [f"Dr. {name}" for name in ("Adams", "Brown", "Clark", "Davis")]
        for cluster in initial_clusters(values):
            for value in cluster.values:
                assert matches(value, cluster.pattern)


class TestPatternCluster:
    def test_sample_returns_distinct_values_in_order(self):
        cluster = PatternCluster(pattern=parse_pattern("<L>2"), values=["ab", "ab", "cd", "ef"])
        assert cluster.sample(2) == ["ab", "cd"]

    def test_sample_smaller_than_requested(self):
        cluster = PatternCluster(pattern=parse_pattern("<L>2"), values=["ab"])
        assert cluster.sample(5) == ["ab"]
