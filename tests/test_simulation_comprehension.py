"""Tests for the comprehension-study model (Figure 13)."""

from __future__ import annotations

import pytest

from repro.bench.suite import explainability_quizzes, explainability_tasks
from repro.simulation.comprehension import build_quiz, run_comprehension_study


@pytest.fixture(scope="module")
def results():
    return run_comprehension_study(explainability_quizzes())


class TestQuizConstruction:
    def test_three_questions_per_task(self):
        for task, questions in explainability_quizzes():
            assert len(questions) == 3
            kinds = [q.kind for q in questions]
            assert kinds == ["verbatim", "seen-format", "novel-format"]
            assert all(q.task_id == task.task_id for q in questions)

    def test_verbatim_question_comes_from_the_data(self):
        for task, questions in explainability_quizzes():
            assert questions[0].quiz_input in task.inputs

    def test_build_quiz_uses_first_incorrect_row(self):
        task = explainability_tasks()[0]
        quiz = build_quiz(task, "A B", "B, A.", "zzz", "zzz")
        assert not task.already_correct(quiz[0].quiz_input)


class TestComprehensionStudy:
    def test_one_result_per_task(self, results):
        assert len(results) == 3
        for result in results:
            assert set(result.correct_rate) == {"CLX", "FlashFill", "RegexReplace"}

    def test_rates_are_fractions(self, results):
        for result in results:
            for rate in result.correct_rate.values():
                assert 0.0 <= rate <= 1.0

    def test_clx_users_understand_the_logic(self, results):
        """CLX readers answer (nearly) everything correctly."""
        for result in results:
            assert result.correct_rate["CLX"] >= 0.67

    def test_clx_about_twice_flashfill_on_average(self, results):
        """The headline Figure 13 claim."""
        clx = sum(r.correct_rate["CLX"] for r in results) / len(results)
        flashfill = sum(r.correct_rate["FlashFill"] for r in results) / len(results)
        assert clx >= 1.5 * flashfill

    def test_regex_replace_comparable_to_clx(self, results):
        for result in results:
            assert result.correct_rate["RegexReplace"] >= 0.67
