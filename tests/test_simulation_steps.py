"""Tests for the Step effort metric."""

from __future__ import annotations

from repro.simulation.steps import StepBreakdown, SystemRun


class TestStepBreakdown:
    def test_clx_steps(self):
        steps = StepBreakdown(selections=1, repairs=2)
        assert steps.specification == 3
        assert steps.total == 3

    def test_flashfill_steps(self):
        steps = StepBreakdown(examples=4)
        assert steps.total == 4

    def test_regex_replace_rules_count_double(self):
        steps = StepBreakdown(rules=3)
        assert steps.specification == 6
        assert steps.total == 6

    def test_punishment_added_to_total(self):
        steps = StepBreakdown(examples=2, punishment=5)
        assert steps.specification == 2
        assert steps.total == 7

    def test_default_is_zero(self):
        assert StepBreakdown().total == 0


class TestSystemRun:
    def test_as_row_flattens_fields(self):
        run = SystemRun(
            system="CLX",
            task_id="t1",
            steps=StepBreakdown(selections=1, repairs=1, punishment=2),
            perfect=False,
            interactions=3,
        )
        row = run.as_row()
        assert row["system"] == "CLX"
        assert row["steps"] == 4
        assert row["specification"] == 2
        assert row["punishment"] == 2
        assert row["perfect"] is False
        assert row["interactions"] == 3
