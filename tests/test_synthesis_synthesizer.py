"""Tests for Algorithm 2 (UniFi program synthesis over the hierarchy)."""

from __future__ import annotations

import pytest

from repro.clustering.profiler import PatternProfiler, profile
from repro.core.transformer import transform_column
from repro.patterns.parse import parse_pattern
from repro.synthesis.synthesizer import Synthesizer, synthesize
from repro.util.errors import SynthesisError


class TestSynthesizeOnPhones:
    def test_produces_branches_for_transformable_formats(self, phone_values, phone_paren_target):
        hierarchy = profile(phone_values)
        result = synthesize(hierarchy, phone_paren_target)
        notations = {p.notation() for p in result.source_patterns}
        assert "<D>3'-'<D>3'-'<D>4" in notations
        assert "<D>3'.'<D>3'.'<D>4" in notations

    def test_untransformable_formats_are_uncovered(self, phone_values, phone_paren_target):
        hierarchy = profile(phone_values)
        result = synthesize(hierarchy, phone_paren_target)
        uncovered = {p.notation() for p in result.uncovered}
        assert "<D>10" in uncovered          # bare digits cannot be split
        assert "<U>'/'<U>" in uncovered      # N/A noise

    def test_target_pattern_itself_is_skipped(self, phone_values, phone_paren_target):
        hierarchy = profile(phone_values)
        result = synthesize(hierarchy, phone_paren_target)
        assert phone_paren_target not in set(result.source_patterns)
        assert any(phone_paren_target == p for p in result.already_target)

    def test_transforming_with_the_program_conforms(self, small_phone_column, phone_target):
        raw, expected = small_phone_column
        result = synthesize(profile(raw), phone_target)
        report = transform_column(result.program, raw, phone_target)
        # Every row of the 4-format study data is transformable, so every
        # output matches the target pattern even before any repair.
        assert report.is_perfect
        # After oracle repair the outputs are also semantically correct.
        from repro.synthesis.repair import oracle_repair

        repaired, _repairs = oracle_repair(result, expected)
        repaired_report = transform_column(repaired.program, raw, phone_target)
        for value, output in zip(repaired_report.inputs, repaired_report.outputs):
            assert output == expected[value]

    def test_candidates_contain_default_plan_first(self, small_phone_column, phone_target):
        raw, _expected = small_phone_column
        result = synthesize(profile(raw), phone_target)
        for branch in result.program:
            assert result.candidates[branch.pattern][0] == branch.plan

    def test_empty_hierarchy_raises(self, phone_target):
        empty = PatternProfiler(allow_empty=True).profile([])
        with pytest.raises(SynthesisError):
            synthesize(empty, phone_target)


class TestPaperExample5:
    def test_medical_codes_program(self, medical_codes):
        hierarchy = profile(medical_codes)
        target = parse_pattern("'['<U>+'-'<D>+']'")
        result = synthesize(hierarchy, target)
        report = transform_column(result.program, medical_codes, target)
        assert report.outputs == ["[CPT-00350]", "[CPT-00340]", "[CPT-11536]", "[CPT-115]"]

    def test_number_of_branches_matches_paper(self, medical_codes):
        """The paper's Example 5 program has three Switch branches."""
        hierarchy = profile(medical_codes)
        target = parse_pattern("'['<U>+'-'<D>+']'")
        result = synthesize(hierarchy, target)
        assert len(result.program) == 3


class TestHierarchyTraversal:
    def test_single_generalized_branch_covers_several_leaves(self):
        """Names of different widths are covered by one generalized branch."""
        values = ["John Smith", "Christopher Anderson", "Mary Jones", "Smith, J."]
        hierarchy = profile(values)
        target = parse_pattern("<U><L>+','' '<U>'.'")
        result = synthesize(hierarchy, target)
        # A single generalized branch suffices for the three first-last
        # names even though they are three distinct leaves.  The initial
        # <U>+ tokens are narrowed to <U> (every profiled row has a
        # one-character uppercase run there) so the branch's output
        # provably conforms to the target's single-<U> initial.
        first_last_branches = [
            p for p in result.source_patterns if p.notation() == "<U><L>+' '<U><L>+"
        ]
        assert len(first_last_branches) == 1
        assert len(result.program) < 3

    def test_keep_candidates_limit(self, small_phone_column, phone_target):
        raw, _expected = small_phone_column
        result = Synthesizer(keep_candidates=2).synthesize(profile(raw), phone_target)
        for plans in result.candidates.values():
            assert len(plans) <= 2

    def test_repaired_result_swaps_plan(self, small_phone_column, phone_target):
        raw, _expected = small_phone_column
        result = synthesize(profile(raw), phone_target)
        source = result.source_patterns[0]
        alternatives = result.candidates[source]
        if len(alternatives) > 1:
            repaired = result.repaired(source, alternatives[1])
            assert repaired.program.branch_for(source).plan == alternatives[1]
            assert result.program.branch_for(source).plan == alternatives[0]
