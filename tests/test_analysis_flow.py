"""Unit tests for the output-language flow analysis (repro.analysis.flow).

Each fixture program is hand-built to trip exactly one verdict family:
target conformance (CLX015/CLX016), idempotence (CLX017/CLX018), and
static pipeline composition (CLX019–CLX021).  Every test states a
language fact about the program's *outputs* a human can verify by hand.
"""

from __future__ import annotations

import pytest

from repro.analysis.analyzer import verify_artifacts, verify_program
from repro.analysis.findings import Severity
from repro.analysis.flow import (
    branch_output_pattern,
    check_composition,
    check_flow,
    is_verified,
    plan_conforms,
    plan_is_identity,
)
from repro.dsl.ast import AtomicPlan, Branch, ConstStr, Extract, UniFiProgram
from repro.dsl.guards import ContainsGuard
from repro.engine.compiled import CompiledProgram
from repro.patterns.parse import parse_pattern as P


def _compiled(branches, target, column=None):
    metadata = {"column": column} if column else None
    return CompiledProgram(UniFiProgram(branches), P(target), metadata=metadata)


def _rules(findings):
    return [item.rule_id for item in findings]


class TestBranchOutputPattern:
    def test_const_and_extract_concatenate(self):
        branch = Branch(
            P("<D>3'.'<D>4"), AtomicPlan([Extract(1), ConstStr("-"), Extract(3)])
        )
        assert branch_output_pattern(branch).notation() == "<D>3'-'<D>4"

    def test_extract_range_copies_source_tokens(self):
        branch = Branch(P("<U>2'-'<D>+"), AtomicPlan([Extract(2, 3)]))
        assert branch_output_pattern(branch).notation() == "'-'<D>+"

    def test_all_const_plan_has_literal_output(self):
        branch = Branch(P("<L>+"), AtomicPlan([ConstStr("n/a")]))
        assert branch_output_pattern(branch).notation() == "'n/a'"


class TestPlanConforms:
    def test_conforming_plan(self):
        plan = AtomicPlan([Extract(1), ConstStr("-"), Extract(3)])
        assert plan_conforms(P("<D>3'.'<D>4"), plan, P("<D>3'-'<D>4"))

    def test_nonconforming_plan(self):
        assert not plan_conforms(P("<D>3'.'<D>4"), AtomicPlan([Extract(1)]), P("<D>3'-'<D>4"))

    def test_plus_output_escapes_fixed_target(self):
        assert not plan_conforms(P("<D>+"), AtomicPlan([Extract(1)]), P("<D>3"))
        assert plan_conforms(P("<D>3"), AtomicPlan([Extract(1)]), P("<D>+"))


class TestConformance:
    def test_conforming_program_is_verified(self):
        compiled = _compiled(
            [Branch(P("<D>3'.'<D>4"), AtomicPlan([Extract(1), ConstStr("-"), Extract(3)]))],
            "<D>3'-'<D>4",
        )
        findings = check_flow(compiled, "a.clx.json")
        assert findings == []
        assert is_verified(findings)

    def test_unguarded_escape_is_clx015_error(self):
        compiled = _compiled(
            [Branch(P("<D>3'.'<D>4"), AtomicPlan([Extract(1)]))], "<D>3'-'<D>4"
        )
        findings = check_flow(compiled, "a.clx.json")
        assert _rules(findings) == ["CLX015"]
        assert findings[0].severity is Severity.ERROR
        assert findings[0].location == "a.clx.json:branch[1]"
        # The witness is a concrete output outside the target language.
        assert findings[0].data["witness"] == "000"
        assert not is_verified(findings)

    def test_guarded_escape_is_clx016_warn(self):
        compiled = _compiled(
            [
                Branch(
                    P("<D>3'.'<D>4"),
                    AtomicPlan([Extract(1)]),
                    guard=ContainsGuard("1"),
                )
            ],
            "<D>3'-'<D>4",
        )
        findings = check_flow(compiled, "a.clx.json")
        assert _rules(findings) == ["CLX016"]
        assert findings[0].severity is Severity.WARN
        assert not is_verified(findings)

    def test_identity_plan_branch_is_exempt(self):
        # Extract(1, 2) reproduces every <A>+'/'... match verbatim: the
        # branch cannot corrupt anything, exactly like pass-through.
        compiled = _compiled(
            [Branch(P("<A>+'/'<A>+"), AtomicPlan([Extract(1, 3)]))], "<D>3"
        )
        findings = check_flow(compiled, "a.clx.json")
        assert findings == []
        assert is_verified(findings)

    def test_dead_branch_is_not_judged(self):
        # Branch 2 is subsumed by branch 1 (unguarded, earlier): its
        # non-conforming plan can never fire, so no flow verdict.
        compiled = _compiled(
            [
                Branch(P("<D>+'.'<D>+"), AtomicPlan([Extract(1), ConstStr("!")])),
                Branch(P("<D>3'.'<D>4"), AtomicPlan([ConstStr("zzz")])),
            ],
            "<D>+'!'",
        )
        findings = check_flow(compiled, "a.clx.json")
        assert [item.location for item in findings if item.rule_id == "CLX015"] == []

    def test_unsatisfiable_guard_branch_is_not_judged(self):
        compiled = _compiled(
            [
                Branch(
                    P("<D>3"),
                    AtomicPlan([ConstStr("zzz")]),
                    guard=ContainsGuard("kg"),
                )
            ],
            "<D>3'-'<D>4",
        )
        assert check_flow(compiled, "a.clx.json") == []


class TestIdempotence:
    def test_self_reentry_is_clx018(self):
        # Output 'x'<D>+ escapes the target and re-enters the branch's
        # own dispatch: repeated applies keep rewriting.
        compiled = _compiled(
            [Branch(P("'x'<D>+"), AtomicPlan([ConstStr("x"), Extract(2)]))],
            "'y'<D>2",
        )
        findings = check_flow(compiled, "a.clx.json")
        assert _rules(findings) == ["CLX015", "CLX018"]

    def test_cross_reentry_is_clx017(self):
        # Branch 1's output <D>2 escapes the target and lands in branch
        # 2's dispatch, whose non-identity plan transforms it again.
        compiled = _compiled(
            [
                Branch(P("<D>2'.'<D>2"), AtomicPlan([Extract(1)])),
                Branch(P("<D>2"), AtomicPlan([ConstStr("#"), Extract(1)])),
            ],
            "'#'<D>2",
        )
        findings = check_flow(compiled, "a.clx.json")
        assert _rules(findings) == ["CLX015", "CLX017"]
        reentry = findings[1]
        assert reentry.data["reenters_branch"] == 2
        assert reentry.location == "a.clx.json:branch[1]"

    def test_conforming_output_never_reenters(self):
        # Conforming outputs hit the target pass-through on a second
        # apply, so no idempotence finding even though the output
        # language overlaps branch dispatch syntactically.
        compiled = _compiled(
            [Branch(P("<D>3'.'<D>4"), AtomicPlan([Extract(1), ConstStr("-"), Extract(3)]))],
            "<D>3'-'<D>4",
        )
        assert check_flow(compiled, "a.clx.json") == []


class TestVerifyEntryPoints:
    def test_verify_program_returns_report_and_bit(self):
        compiled = _compiled(
            [Branch(P("<D>3'.'<D>4"), AtomicPlan([Extract(1), ConstStr("-"), Extract(3)]))],
            "<D>3'-'<D>4",
        )
        report, verified = verify_program(compiled, "a.clx.json")
        assert verified and len(report) == 0

    def test_verify_artifacts_maps_each_name(self):
        good = _compiled(
            [Branch(P("<D>3'.'<D>4"), AtomicPlan([Extract(1), ConstStr("-"), Extract(3)]))],
            "<D>3'-'<D>4",
        )
        bad = _compiled(
            [Branch(P("<D>3'.'<D>4"), AtomicPlan([Extract(1)]))], "<D>3'-'<D>4"
        )
        report, verified = verify_artifacts([("good", good), ("bad", bad)])
        assert verified == {"good": True, "bad": False}
        assert _rules(report.findings) == ["CLX015"]


class TestComposition:
    def _producer(self):
        return _compiled(
            [Branch(P("<D>3'.'<D>4"), AtomicPlan([Extract(1), ConstStr("-"), Extract(3)]))],
            "<D>3'-'<D>4",
            column="code",
        )

    def test_broken_chain_is_clx019(self):
        # The consumer reads code_transformed but only dispatches on
        # letters: nothing the producer emits can ever match.
        consumer = _compiled(
            [Branch(P("<U>+'.'<U>+"), AtomicPlan([Extract(1), ConstStr("-"), Extract(3)]))],
            "<U>+'-'<U>+",
            column="code_transformed",
        )
        findings = check_composition(
            [("p.clx.json", self._producer()), ("c.clx.json", consumer)]
        )
        assert _rules(findings) == ["CLX019"]
        assert findings[0].severity is Severity.ERROR
        assert findings[0].location == "c.clx.json"
        assert findings[0].data["producer"] == "p.clx.json"

    def test_matched_chain_is_clean(self):
        # The consumer shares the producer's target (its pass-through
        # absorbs everything the producer emits) and only transforms a
        # format the producer never produces.
        consumer = _compiled(
            [Branch(P("<D>3'.'<D>4"), AtomicPlan([Extract(1), ConstStr("-"), Extract(3)]))],
            "<D>3'-'<D>4",
            column="code_transformed",
        )
        findings = check_composition(
            [("p.clx.json", self._producer()), ("c.clx.json", consumer)]
        )
        assert findings == []

    def test_leaky_chain_is_clx020(self):
        # The consumer's only matching arm is guarded: values failing
        # the guard leak through unmatched, so consumption of the
        # producer's pass-through is not *sure*.
        consumer = _compiled(
            [
                Branch(
                    P("<D>3'-'<D>4"),
                    AtomicPlan([Extract(1, 3)]),
                    guard=ContainsGuard("1"),
                )
            ],
            "'#'<D>3'-'<D>4",
            column="code_transformed",
        )
        findings = check_composition(
            [("p.clx.json", self._producer()), ("c.clx.json", consumer)]
        )
        assert _rules(findings) == ["CLX020"]
        assert findings[0].severity is Severity.WARN

    def test_retransform_chain_is_clx021(self):
        # The consumer's branch matches values already conforming to
        # the producer's target (outside the consumer's own target) and
        # rewrites them: applying the pair twice is not idempotent.
        consumer = _compiled(
            [Branch(P("<D>3'-'<D>4"), AtomicPlan([ConstStr("#"), Extract(1, 3)]))],
            "'#'<D>3'-'<D>4",
            column="code_transformed",
        )
        findings = check_composition(
            [("p.clx.json", self._producer()), ("c.clx.json", consumer)]
        )
        assert _rules(findings) == ["CLX021"]
        assert findings[0].location == "c.clx.json:branch[1]"

    def test_chain_requires_column_metadata(self):
        anonymous = _compiled(
            [Branch(P("<U>+"), AtomicPlan([ConstStr("x")]))], "'x'"
        )
        findings = check_composition(
            [("p.clx.json", self._producer()), ("c.clx.json", anonymous)]
        )
        assert findings == []

    def test_single_artifact_has_no_composition(self):
        assert check_composition([("p.clx.json", self._producer())]) == []


class TestPlanIsIdentity:
    @pytest.mark.parametrize(
        "plan,expected",
        [
            (AtomicPlan([Extract(1, 3)]), True),
            (AtomicPlan([Extract(1), Extract(2), Extract(3)]), True),
            (AtomicPlan([Extract(1, 2)]), False),  # drops token 3
            (AtomicPlan([Extract(3), Extract(1, 2)]), False),  # reorders
            (AtomicPlan([Extract(1, 3), ConstStr("!")]), False),
        ],
    )
    def test_identity_detection(self, plan, expected):
        branch = Branch(P("<D>3'.'<D>4"), plan)
        assert plan_is_identity(branch) is expected
