"""End-to-end integration tests replaying the paper's running examples."""

from __future__ import annotations

from repro import CLXSession
from repro.dsl.replace import apply_replacements
from repro.patterns.matching import matches


class TestMotivatingExample:
    """Section 2: Bob's 10,000 phone numbers (scaled down)."""

    def test_full_clx_loop_on_phone_column(self):
        from repro.bench.phone import phone_dataset

        raw, expected = phone_dataset(count=120, format_count=4, seed=2024)
        session = CLXSession(raw)

        # Cluster: the user sees a handful of patterns, not 120 rows.
        summaries = session.pattern_summary()
        assert len(summaries) == 4

        # Label: the desired pattern.
        target = session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")

        # Transform: program + explanation + report.
        report = session.transform()
        assert report.is_perfect
        operations = session.explain()
        assert operations

        # Verify at the pattern level: the transformed column has exactly
        # one pattern cluster (Figure 2).
        assert len(session.transformed_summary()) == 1

        # The explained Replace operations transform data identically to
        # the UniFi program the user approved.
        for value, output in report.pairs():
            if matches(value, target):
                continue
            assert apply_replacements(operations, value) == output


class TestExample5MedicalCodes:
    def test_table_3_reproduced(self, medical_codes):
        session = CLXSession(medical_codes)
        session.label_target_from_string("[CPT-11536]", generalize=1)
        report = session.transform()
        assert report.pairs() == [
            ("CPT-00350", "[CPT-00350]"),
            ("[CPT-00340", "[CPT-00340]"),
            ("[CPT-11536]", "[CPT-11536]"),
            ("CPT115", "[CPT-115]"),
        ]

    def test_program_has_three_replace_operations(self, medical_codes):
        session = CLXSession(medical_codes)
        session.label_target_from_string("[CPT-11536]", generalize=1)
        assert len(session.explain()) == 3


class TestExample6EmployeeNames:
    def test_table_4_reproduced_with_repair(self, employee_names):
        from repro.dsl.interpreter import apply_plan
        from repro.patterns.matching import match_pattern

        desired = {
            "Dr. Eran Yahav": "Yahav, E.",
            "Fisher, K.": "Fisher, K.",
            "Bill Gates, Sr.": "Gates, B.",
            "Oege de Moor": "Moor, O.",
        }
        session = CLXSession(employee_names)
        session.label_target_from_string("Fisher, K.", generalize=1)

        # Repair each branch whose default plan is wrong, choosing among
        # the suggested candidates — the Section 6.4 loop.
        for branch in list(session.program):
            rows = [r for r in employee_names if match_pattern(r, branch.pattern) is not None]
            if all(
                apply_plan(branch.plan, match_pattern(r, branch.pattern)) == desired[r]
                for r in rows
            ):
                continue
            for candidate in session.repair_candidates(branch.pattern).alternatives:
                if all(
                    apply_plan(candidate, match_pattern(r, branch.pattern)) == desired[r]
                    for r in rows
                ):
                    session.apply_repair(branch.pattern, candidate)
                    break

        report = session.transform()
        outputs = dict(report.pairs())
        # Every name with a covered pattern ends up correct; the lowercase
        # particle "de" in "Oege de Moor" may legitimately stay uncovered.
        assert outputs["Fisher, K."] == "Fisher, K."
        assert outputs["Dr. Eran Yahav"] == "Yahav, E."
        assert outputs["Bill Gates, Sr."] == "Gates, B."


class TestFlaggingBehaviour:
    def test_untransformable_rows_survive_unchanged(self, phone_values):
        session = CLXSession(phone_values)
        session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        report = session.transform()
        assert report.outputs[report.inputs.index("N/A")] == "N/A"
        assert report.outputs[report.inputs.index("7342363466")] == "7342363466"
        assert set(report.flagged) == {"N/A", "7342363466"}
