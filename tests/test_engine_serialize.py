"""Tests for the JSON codecs in repro.engine.serialize."""

from __future__ import annotations

import pytest

from repro.dsl.ast import AtomicPlan, Branch, ConstStr, Extract, UniFiProgram
from repro.dsl.guards import ContainsGuard
from repro.engine.serialize import (
    branch_from_dict,
    branch_to_dict,
    expression_from_dict,
    expression_to_dict,
    guard_from_dict,
    guard_to_dict,
    pattern_from_json,
    pattern_to_json,
    plan_from_dict,
    plan_to_dict,
    program_from_dict,
    program_to_dict,
)
from repro.patterns.parse import parse_pattern
from repro.util.errors import SerializationError


class TestPatternCodec:
    def test_round_trip_notation(self):
        pattern = parse_pattern("'('<D>3')'' '<D>3'-'<D>4")
        assert pattern_from_json(pattern_to_json(pattern)) == pattern

    def test_round_trip_awkward_literals(self):
        pattern = parse_pattern(r"'\''<AN>+'\\'")
        assert pattern_from_json(pattern_to_json(pattern)) == pattern

    def test_bad_notation_raises_serialization_error(self):
        with pytest.raises(SerializationError):
            pattern_from_json("<NOPE>3")

    def test_non_string_raises(self):
        with pytest.raises(SerializationError):
            pattern_from_json(42)


class TestExpressionCodec:
    def test_const_round_trip(self):
        expression = ConstStr("-")
        assert expression_from_dict(expression_to_dict(expression)) == expression

    def test_extract_round_trip(self):
        expression = Extract(2, 5)
        assert expression_from_dict(expression_to_dict(expression)) == expression

    def test_extract_end_defaults_to_start(self):
        assert expression_from_dict({"op": "extract", "start": 3}) == Extract(3)

    def test_unknown_op_rejected(self):
        with pytest.raises(SerializationError):
            expression_from_dict({"op": "reverse"})

    def test_invalid_extract_range_rejected(self):
        with pytest.raises(SerializationError):
            expression_from_dict({"op": "extract", "start": 4, "end": 2})

    def test_non_integer_indices_rejected(self):
        with pytest.raises(SerializationError):
            expression_from_dict({"op": "extract", "start": "1"})

    def test_empty_const_rejected(self):
        with pytest.raises(SerializationError):
            expression_from_dict({"op": "const", "text": ""})


class TestPlanCodec:
    def test_round_trip(self):
        plan = AtomicPlan([Extract(2), ConstStr("-"), Extract(5, 7)])
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_plan_must_be_a_list(self):
        with pytest.raises(SerializationError):
            plan_from_dict({"op": "const", "text": "x"})


class TestGuardCodec:
    def test_none_round_trips(self):
        assert guard_to_dict(None) is None
        assert guard_from_dict(None) is None

    def test_contains_round_trip(self):
        guard = ContainsGuard("picture", case_sensitive=False)
        assert guard_from_dict(guard_to_dict(guard)) == guard

    def test_case_sensitivity_defaults_true(self):
        assert guard_from_dict({"type": "contains", "keyword": "x"}) == ContainsGuard("x")

    def test_unknown_type_rejected(self):
        with pytest.raises(SerializationError):
            guard_from_dict({"type": "regex", "pattern": ".*"})

    def test_unserializable_guard_rejected(self):
        class Opaque:
            def holds(self, value):
                return True

        with pytest.raises(SerializationError):
            guard_to_dict(Opaque())

    def test_invalid_payload_rejected(self):
        with pytest.raises(SerializationError):
            guard_from_dict({"type": "contains", "keyword": ""})


class TestBranchAndProgramCodec:
    def _program(self) -> UniFiProgram:
        pattern = parse_pattern("<D>3'.'<D>3'.'<D>4")
        plan = AtomicPlan([Extract(1), ConstStr("-"), Extract(3), ConstStr("-"), Extract(5)])
        guarded = Branch(
            pattern=parse_pattern("<AN>+"),
            plan=AtomicPlan([ConstStr("n/a")]),
            guard=ContainsGuard("missing"),
        )
        return UniFiProgram([Branch(pattern=pattern, plan=plan), guarded])

    def test_branch_round_trip_preserves_guard(self):
        program = self._program()
        for branch in program.branches:
            assert branch_from_dict(branch_to_dict(branch)) == branch

    def test_unguarded_branch_payload_omits_guard_key(self):
        branch = self._program().branches[0]
        assert "guard" not in branch_to_dict(branch)

    def test_program_round_trip(self):
        program = self._program()
        assert program_from_dict(program_to_dict(program)) == program

    def test_program_methods_round_trip_json(self):
        program = self._program()
        assert UniFiProgram.loads(program.dumps()) == program
        assert UniFiProgram.from_dict(program.to_dict()) == program

    def test_program_loads_rejects_bad_json(self):
        with pytest.raises(SerializationError):
            UniFiProgram.loads("{not json")

    def test_program_requires_branches_list(self):
        with pytest.raises(SerializationError):
            program_from_dict({"branches": "nope"})
        with pytest.raises(SerializationError):
            program_from_dict([])

    def test_missing_branch_fields_rejected(self):
        with pytest.raises(SerializationError):
            program_from_dict({"branches": [{"plan": []}]})


class TestConstStrTypeStrictness:
    def test_non_string_const_text_rejected_at_decode_time(self):
        with pytest.raises(SerializationError):
            expression_from_dict({"op": "const", "text": 5})
