"""Tests for executable Replace operations."""

from __future__ import annotations

from repro.dsl.replace import ReplaceOperation, apply_replace, apply_replacements


class TestReplaceOperation:
    def test_figure_4_operation(self):
        """Replace '^(digit3)-(digit3)-(digit4)$' with '($1) $2-$3'."""
        operation = ReplaceOperation(
            regex=r"^([0-9]{3})\-([0-9]{3})\-([0-9]{4})$",
            replacement="($1) $2-$3",
        )
        assert operation.apply("734-422-8073") == "(734) 422-8073"

    def test_non_matching_value_is_unchanged(self):
        operation = ReplaceOperation(regex=r"^[0-9]+$", replacement="digits")
        assert operation.apply("abc") == "abc"

    def test_matches(self):
        operation = ReplaceOperation(regex=r"^[0-9]+$", replacement="digits")
        assert operation.matches("123")
        assert not operation.matches("12a")

    def test_dollar_escape(self):
        operation = ReplaceOperation(regex=r"^([0-9]+)$", replacement="$$ $1")
        assert operation.apply("42") == "$ 42"

    def test_multi_digit_group_reference(self):
        groups = "".join(f"([a-z])" for _ in range(11))
        operation = ReplaceOperation(regex=f"^{groups}$", replacement="$11$10$1")
        assert operation.apply("abcdefghijk") == "kja"

    def test_str_rendering(self):
        operation = ReplaceOperation(regex="^a$", replacement="b")
        assert "Replace" in str(operation)

    def test_function_form(self):
        operation = ReplaceOperation(regex=r"^(a)(b)$", replacement="$2$1")
        assert apply_replace(operation, "ab") == "ba"


class TestApplyReplacements:
    def test_first_matching_operation_wins(self):
        operations = [
            ReplaceOperation(regex=r"^[0-9]{2}$", replacement="two"),
            ReplaceOperation(regex=r"^[0-9]+$", replacement="many"),
        ]
        assert apply_replacements(operations, "12") == "two"
        assert apply_replacements(operations, "1234") == "many"

    def test_no_match_returns_input(self):
        operations = [ReplaceOperation(regex=r"^[0-9]+$", replacement="digits")]
        assert apply_replacements(operations, "n/a") == "n/a"

    def test_empty_operation_list(self):
        assert apply_replacements([], "x") == "x"
