"""Tests for bounded-memory incremental profiling and profile merging."""

from __future__ import annotations

import pytest

from repro.bench.generators import addresses, human_names, medical_codes
from repro.bench.phone import phone_dataset
from repro.clustering.incremental import (
    ColumnProfile,
    IncrementalProfiler,
    SampledCluster,
    profile_stream,
)
from repro.clustering.profiler import PatternProfiler
from repro.core.session import CLXSession
from repro.util.errors import ValidationError


def _layer_signature(hierarchy):
    """(pattern notation, size) per node per layer — the comparable core."""
    return [
        [(node.pattern.notation(), node.size) for node in layer]
        for layer in hierarchy.layers
    ]


def _bench_columns():
    return {
        "phones": phone_dataset(300, 6, seed=331)[0],
        "names": human_names(60)[0],
        "medical": medical_codes(40)[0],
        "addresses": addresses(50)[0],
    }


class TestBatchEquivalence:
    @pytest.mark.parametrize("name", list(_bench_columns()))
    def test_hierarchy_matches_batch_profiler(self, name):
        values = _bench_columns()[name]
        batch = PatternProfiler().profile(values)
        incremental = IncrementalProfiler().profile(iter(values)).to_hierarchy()
        assert _layer_signature(incremental) == _layer_signature(batch)

    def test_constant_promotion_matches_batch(self, employee_names):
        # The "Dr." prefix must be promoted identically to the batch path.
        values = employee_names * 3
        batch = PatternProfiler().profile(values)
        incremental = profile_stream(iter(values)).to_hierarchy()
        assert sorted(p.notation() for p in incremental.leaf_patterns()) == sorted(
            p.notation() for p in batch.leaf_patterns()
        )

    def test_total_rows_is_exact(self):
        values = phone_dataset(500, 4, seed=3)[0]
        hierarchy = profile_stream(values).to_hierarchy()
        assert hierarchy.total_rows == 500

    def test_profiles_a_generator_without_len(self):
        hierarchy = profile_stream(v for v in ["a1", "b2", "c3"]).to_hierarchy()
        assert hierarchy.total_rows == 3


class TestBoundedMemory:
    def test_exemplars_are_capped(self):
        values = [f"x{index:05d}" for index in range(1000)]
        profile = IncrementalProfiler(exemplar_cap=5).profile(values)
        hierarchy = profile.to_hierarchy()
        (leaf,) = hierarchy.leaf_nodes
        assert isinstance(leaf.cluster, SampledCluster)
        assert leaf.size == 1000
        assert len(leaf.cluster.values) == 5

    def test_sample_draws_from_exemplars(self):
        profile = profile_stream(["aa", "bb", "aa", "cc"])
        (leaf,) = profile.to_hierarchy().leaf_nodes
        assert leaf.cluster.sample(2) == ["aa", "bb"]

    def test_exemplar_cap_must_be_positive(self):
        with pytest.raises(ValidationError):
            ColumnProfile(exemplar_cap=0)


class TestMerge:
    def test_shard_then_merge_equals_whole_column(self):
        for values in _bench_columns().values():
            third = len(values) // 3
            shards = [values[:third], values[third : 2 * third], values[2 * third :]]
            merged = ColumnProfile.merge_all(
                [IncrementalProfiler().profile(shard) for shard in shards]
            )
            whole = IncrementalProfiler().profile(values)
            assert merged.row_count == whole.row_count
            assert merged.leaf_counts() == whole.leaf_counts()
            assert _layer_signature(merged.to_hierarchy()) == _layer_signature(
                whole.to_hierarchy()
            )

    def test_merge_is_associative(self):
        values = phone_dataset(150, 6, seed=9)[0]
        a, b, c = (
            IncrementalProfiler().profile(values[index::3]) for index in range(3)
        )
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.leaf_counts() == right.leaf_counts()
        assert _layer_signature(left.to_hierarchy()) == _layer_signature(
            right.to_hierarchy()
        )

    def test_merge_does_not_mutate_inputs(self):
        a = profile_stream(["123"])
        b = profile_stream(["456", "x9"])
        merged = a.merge(b)
        assert a.row_count == 1 and b.row_count == 2
        assert merged.row_count == 3

    def test_merge_intersects_constant_trackers(self):
        # The constant "Mr " prefix must survive a merge of agreeing
        # shards and be promoted exactly as the batch profiler does ...
        shard = ["Mr Smith", "Mr Jones", "Mr Brown"]
        merged = profile_stream(shard).merge(profile_stream(shard))
        batch = PatternProfiler().profile(shard * 2)
        assert _layer_signature(merged.to_hierarchy()) == _layer_signature(batch)
        assert merged.to_hierarchy().leaf_patterns()[0].notation() == "'M''r'' '<U><L>4"

    def test_merge_demotes_constants_when_shards_disagree(self):
        # ... while disagreeing shards demote the position, again exactly
        # like batch-profiling the concatenated column.
        a = ["Mr Smith", "Mr Jones", "Mr Brown"]
        b = ["Dr Smith", "Dr Jones", "Dr Brown"]
        merged = profile_stream(a).merge(profile_stream(b))
        batch = PatternProfiler().profile(a + b)
        assert _layer_signature(merged.to_hierarchy()) == _layer_signature(batch)

    def test_merge_rejects_mismatched_configuration(self):
        a = profile_stream(["1"], exemplar_cap=4)
        b = profile_stream(["2"], exemplar_cap=8)
        with pytest.raises(ValidationError):
            a.merge(b)

    def test_merge_all_requires_a_profile(self):
        with pytest.raises(ValidationError):
            ColumnProfile.merge_all([])


class TestValidation:
    def test_empty_iterable_raises(self):
        with pytest.raises(ValidationError):
            IncrementalProfiler().profile(iter([]))

    def test_allow_empty_returns_empty_profile(self):
        profile = IncrementalProfiler(allow_empty=True).profile(iter([]))
        assert profile.row_count == 0
        with pytest.raises(ValidationError):
            profile.to_hierarchy()
        assert profile.to_hierarchy(allow_empty=True).leaf_nodes == []

    def test_non_unit_constant_threshold_is_rejected(self):
        with pytest.raises(ValidationError):
            IncrementalProfiler(constant_threshold=0.9)
        # Without constant discovery any threshold is fine.
        IncrementalProfiler(discover_constants=False, constant_threshold=0.9)


class TestFromProfile:
    def test_synthesizes_the_same_program_as_a_full_session(self):
        values = phone_dataset(300, 6, seed=331)[0]
        profiled = CLXSession.from_profile(profile_stream(values))
        profiled.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        full = CLXSession(values)
        full.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        assert profiled.compile() == full.compile()

    def test_compiled_program_transforms_like_the_full_session(self):
        values = phone_dataset(120, 4, seed=17)[0]
        profiled = CLXSession.from_profile(profile_stream(values))
        profiled.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        engine = profiled.engine()
        full = CLXSession(values)
        full.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        assert engine.run(values).outputs == full.transform().outputs

    def test_accepts_a_hierarchy(self):
        values = phone_dataset(50, 2, seed=5)[0]
        hierarchy = profile_stream(values).to_hierarchy()
        session = CLXSession.from_profile(hierarchy)
        assert session.hierarchy is hierarchy

    def test_pattern_summary_reports_counts_and_samples(self):
        values = phone_dataset(200, 4, seed=11)[0]
        session = CLXSession.from_profile(profile_stream(values))
        summaries = session.pattern_summary()
        assert sum(summary.count for summary in summaries) == 200
        assert all(summary.samples for summary in summaries)

    def test_transform_and_values_need_the_raw_column(self):
        session = CLXSession.from_profile(profile_stream(["734-555-0199"]))
        session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        with pytest.raises(ValidationError, match="profile"):
            session.transform()
        with pytest.raises(ValidationError, match="profile"):
            session.values

    def test_rejects_other_types_and_empty_profiles(self):
        with pytest.raises(ValidationError):
            CLXSession.from_profile(["not", "a", "profile"])
        empty = IncrementalProfiler(allow_empty=True).profile(iter([]))
        with pytest.raises(ValidationError):
            CLXSession.from_profile(empty)
