"""Tests for the Wrangler-style and natural-language pattern renderings."""

from __future__ import annotations

from repro.patterns.parse import parse_pattern
from repro.patterns.render import render_natural, render_wrangler


class TestWranglerRendering:
    def test_phone_pattern_matches_figure_2_style(self):
        pattern = parse_pattern("'('<D>3')'' '<D>3'-'<D>4")
        assert render_wrangler(pattern) == "\\({digit}3\\)\\ {digit}3\\-{digit}4"

    def test_plus_quantifier(self):
        assert render_wrangler(parse_pattern("<L>+")) == "{lower}+"

    def test_quantifier_one_is_implicit(self):
        assert render_wrangler(parse_pattern("<U>")) == "{upper}"

    def test_all_class_names(self):
        pattern = parse_pattern("<D><L><U><A><AN>")
        rendered = render_wrangler(pattern)
        for name in ("{digit}", "{lower}", "{upper}", "{alpha}", "{alphanum}"):
            assert name in rendered

    def test_regex_metacharacters_escaped(self):
        assert render_wrangler(parse_pattern("'.'")) == "\\."
        assert render_wrangler(parse_pattern("'('")) == "\\("


class TestNaturalRendering:
    def test_counts_and_pluralization(self):
        text = render_natural(parse_pattern("<D>3'-'<D>1"))
        assert "3 digits" in text
        assert "1 digit" in text
        assert "'-'" in text

    def test_plus_quantifier(self):
        assert "one or more lowercase letters" in render_natural(parse_pattern("<L>+"))

    def test_empty_pattern(self):
        assert render_natural(parse_pattern("")) == "(empty string)"
