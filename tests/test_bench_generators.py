"""Tests for the synthetic data generators."""

from __future__ import annotations

import pytest

from repro.bench import generators as gen
from repro.patterns.matching import pattern_of_string


class TestPhoneNumbers:
    def test_deterministic_for_a_seed(self):
        first = gen.phone_numbers(20, ["dashes", "dots"], seed=5)
        second = gen.phone_numbers(20, ["dashes", "dots"], seed=5)
        assert first == second

    def test_different_seeds_differ(self):
        first, _ = gen.phone_numbers(20, ["dashes"], seed=1)
        second, _ = gen.phone_numbers(20, ["dashes"], seed=2)
        assert first != second

    def test_every_requested_format_appears(self):
        formats = ["paren_space", "dots", "plus_one"]
        raw, _ = gen.phone_numbers(30, formats, seed=3)
        patterns = {pattern_of_string(value).notation() for value in raw}
        assert "'('<D>3')'' '<D>3'-'<D>4" in patterns
        assert "<D>3'.'<D>3'.'<D>4" in patterns
        assert any(notation.startswith("'+'") for notation in patterns)

    def test_expected_outputs_are_in_desired_format(self):
        raw, expected = gen.phone_numbers(15, ["dots", "dashes"], seed=4, desired="dashes")
        for value in raw:
            assert pattern_of_string(expected[value]).notation() == "<D>3'-'<D>3'-'<D>4"

    def test_count_too_small_rejected(self):
        with pytest.raises(ValueError):
            gen.phone_numbers(1, ["dots", "dashes"], seed=1)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            gen.phone_numbers(5, ["carrier-pigeon"], seed=1)


class TestOtherGenerators:
    @pytest.mark.parametrize(
        "generator",
        [
            gen.human_names,
            gen.dates,
            gen.addresses,
            gen.medical_codes,
            gen.product_ids,
            gen.log_entries,
            gen.urls,
            gen.emails,
            gen.university_names,
            gen.car_model_ids,
            gen.currency_amounts,
            gen.file_paths,
            gen.name_position_pairs,
            gen.country_numbers,
            gen.city_country_pairs,
        ],
    )
    def test_every_generator_is_deterministic_and_complete(self, generator):
        raw1, expected1 = generator(12, seed=42)
        raw2, expected2 = generator(12, seed=42)
        assert raw1 == raw2 and expected1 == expected2
        assert len(raw1) == 12
        for value in raw1:
            assert value in expected1

    def test_human_names_desired_format(self):
        _raw, expected = gen.human_names(12, seed=1)
        for desired in expected.values():
            assert ", " in desired and desired.endswith(".")

    def test_dates_desired_format(self):
        _raw, expected = gen.dates(12, seed=1)
        for desired in expected.values():
            assert pattern_of_string(desired).notation() == "<D>2'/'<D>2'/'<D>4"

    def test_medical_codes_match_paper_target(self):
        _raw, expected = gen.medical_codes(8, seed=1)
        for desired in expected.values():
            assert desired.startswith("[CPT-") and desired.endswith("]")
