"""Tests for the UniFi AST node types."""

from __future__ import annotations

import pytest

from repro.dsl.ast import AtomicPlan, Branch, ConstStr, Extract, UniFiProgram
from repro.patterns.parse import parse_pattern


class TestConstStr:
    def test_holds_text(self):
        assert ConstStr("-").text == "-"

    def test_rejects_empty_text(self):
        with pytest.raises(ValueError):
            ConstStr("")

    def test_equality(self):
        assert ConstStr("x") == ConstStr("x")
        assert ConstStr("x") != ConstStr("y")


class TestExtract:
    def test_single_index_shorthand(self):
        extract = Extract(3)
        assert extract.start == 3 and extract.end == 3
        assert extract.width == 1
        assert str(extract) == "Extract(3)"

    def test_range(self):
        extract = Extract(1, 4)
        assert extract.width == 4
        assert str(extract) == "Extract(1,4)"

    @pytest.mark.parametrize("start, end", [(0, 0), (0, 2), (3, 1), (-1, 1)])
    def test_invalid_ranges_rejected(self, start, end):
        with pytest.raises(ValueError):
            Extract(start, end)

    def test_equality_and_hash(self):
        assert Extract(1, 2) == Extract(1, 2)
        assert Extract(1) == Extract(1, 1)
        assert hash(Extract(2)) == hash(Extract(2, 2))


class TestAtomicPlan:
    def test_counts(self):
        plan = AtomicPlan((Extract(1), ConstStr("-"), Extract(2, 3)))
        assert len(plan) == 3
        assert plan.extract_count == 2
        assert plan.const_count == 1

    def test_rejects_foreign_expressions(self):
        with pytest.raises(TypeError):
            AtomicPlan(("not-an-expression",))

    def test_str_is_concat(self):
        plan = AtomicPlan((Extract(1), ConstStr("]")))
        assert str(plan) == "Concat(Extract(1), ConstStr(']'))"

    def test_iterable(self):
        plan = AtomicPlan((Extract(1),))
        assert list(plan) == [Extract(1)]


class TestUniFiProgram:
    def _program(self):
        branch_a = Branch(parse_pattern("<D>3"), AtomicPlan((Extract(1),)))
        branch_b = Branch(parse_pattern("<L>+"), AtomicPlan((ConstStr("x"),)))
        return UniFiProgram((branch_a, branch_b)), branch_a, branch_b

    def test_len_and_iteration(self):
        program, branch_a, branch_b = self._program()
        assert len(program) == 2
        assert list(program) == [branch_a, branch_b]

    def test_patterns_property(self):
        program, branch_a, branch_b = self._program()
        assert program.patterns == (branch_a.pattern, branch_b.pattern)

    def test_branch_for(self):
        program, branch_a, _branch_b = self._program()
        assert program.branch_for(branch_a.pattern) is branch_a
        assert program.branch_for(parse_pattern("<U>9")) is None

    def test_replacing_branch_swaps_plan(self):
        program, branch_a, _ = self._program()
        new_plan = AtomicPlan((ConstStr("!"),))
        updated = program.replacing_branch(branch_a.pattern, new_plan)
        assert updated.branch_for(branch_a.pattern).plan == new_plan
        # The original program is unchanged (programs are immutable values).
        assert program.branch_for(branch_a.pattern).plan == branch_a.plan

    def test_replacing_unknown_pattern_appends(self):
        program, _, _ = self._program()
        pattern = parse_pattern("<U>2")
        updated = program.replacing_branch(pattern, AtomicPlan((Extract(1),)))
        assert len(updated) == 3

    def test_str_shows_switch(self):
        program, _, _ = self._program()
        assert str(program).startswith("Switch(")
