"""Tests for column transformation and the TransformReport."""

from __future__ import annotations

import pytest

from repro.core.result import TransformReport
from repro.core.transformer import transform_column
from repro.clustering.profiler import profile
from repro.patterns.parse import parse_pattern
from repro.synthesis.synthesizer import synthesize


@pytest.fixture
def phone_report(phone_values, phone_paren_target):
    result = synthesize(profile(phone_values), phone_paren_target)
    return transform_column(result.program, phone_values, phone_paren_target)


class TestTransformColumn:
    def test_already_correct_rows_pass_through(self, phone_report, phone_paren_target):
        index = phone_report.inputs.index("(734) 645-8397")
        assert phone_report.outputs[index] == "(734) 645-8397"
        assert phone_report.matched_pattern[index] == phone_paren_target

    def test_unmatched_rows_are_flagged(self, phone_report):
        assert "N/A" in phone_report.flagged
        assert phone_report.flagged_count >= 1

    def test_row_count_and_order_preserved(self, phone_report, phone_values):
        assert phone_report.row_count == len(phone_values)
        assert phone_report.inputs == phone_values

    def test_conforming_statistics(self, phone_report):
        assert 0 < phone_report.conforming_count <= phone_report.row_count
        assert phone_report.conforming_fraction == pytest.approx(
            phone_report.conforming_count / phone_report.row_count
        )

    def test_failures_lists_nonconforming_pairs(self, phone_report):
        failures = phone_report.failures()
        assert all(raw in phone_report.inputs for raw, _out in failures)
        assert ("N/A", "N/A") in failures

    def test_by_source_pattern_groups_rows(self, phone_report):
        grouped = phone_report.by_source_pattern()
        total = sum(len(pairs) for pairs in grouped.values())
        assert total == phone_report.row_count
        assert None in grouped  # the flagged rows


class TestTransformReportValidation:
    def test_parallel_lists_required(self):
        with pytest.raises(ValueError):
            TransformReport(
                inputs=["a"], outputs=[], matched_pattern=[], target=parse_pattern("<L>")
            )

    def test_empty_report_statistics(self):
        report = TransformReport(
            inputs=[], outputs=[], matched_pattern=[], target=parse_pattern("<L>")
        )
        assert report.conforming_fraction == 0.0
        assert not report.is_perfect
