"""Tests for the compile/apply CLI subcommands (compile-once/apply-anywhere)."""

from __future__ import annotations

import csv
import json

import pytest

from repro.cli import main
from repro.engine.compiled import CompiledProgram


@pytest.fixture
def phone_csv(tmp_path):
    path = tmp_path / "phones.csv"
    rows = [
        {"name": "A", "phone": "(734) 645-8397"},
        {"name": "B", "phone": "734.236.3466"},
        {"name": "C", "phone": "734-422-8073"},
        {"name": "D", "phone": "(734)586-7252"},
    ]
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=["name", "phone"])
        writer.writeheader()
        writer.writerows(rows)
    return path


@pytest.fixture
def other_phone_csv(tmp_path):
    """A second file the program was never synthesized on."""
    path = tmp_path / "more_phones.csv"
    rows = [
        {"id": "1", "phone": "(906) 555-1234"},
        {"id": "2", "phone": "906.555.9999"},
        {"id": "3", "phone": "906-555-0000"},
    ]
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=["id", "phone"])
        writer.writeheader()
        writer.writerows(rows)
    return path


@pytest.fixture
def artifact(phone_csv, tmp_path):
    path = tmp_path / "phone.clx.json"
    code = main(
        [
            "compile", str(phone_csv), "--column", "phone",
            "--target-pattern", "<D>3'-'<D>3'-'<D>4",
            "--output", str(path),
        ]
    )
    assert code == 0
    return path


class TestCompileCommand:
    def test_writes_a_loadable_versioned_artifact(self, artifact):
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert payload["format"] == CompiledProgram.FORMAT
        assert payload["version"] == CompiledProgram.VERSION
        assert payload["metadata"]["column"] == "phone"
        compiled = CompiledProgram.loads(artifact.read_text(encoding="utf-8"))
        assert len(compiled) >= 1

    def test_prints_artifact_to_stdout_without_output(self, phone_csv, capsys):
        code = main(
            [
                "compile", str(phone_csv), "--column", "phone",
                "--target-pattern", "<D>3'-'<D>3'-'<D>4",
            ]
        )
        assert code == 0
        compiled = CompiledProgram.loads(capsys.readouterr().out)
        assert compiled.target.notation() == "<D>3'-'<D>3'-'<D>4"

    def test_explains_operations_on_stderr(self, phone_csv, tmp_path, capsys):
        main(
            [
                "compile", str(phone_csv), "--column", "phone",
                "--target-pattern", "<D>3'-'<D>3'-'<D>4",
                "--output", str(tmp_path / "p.clx.json"),
            ]
        )
        assert "Replace" in capsys.readouterr().err

    def test_missing_target_is_an_error(self, phone_csv, capsys):
        code = main(["compile", str(phone_csv), "--column", "phone"])
        assert code == 2


class TestApplyCommand:
    # The exact CSV an apply of the compiled phone program must produce
    # on the second file: the golden file for the compile->apply path.
    GOLDEN = (
        "id,phone,phone_transformed\n"
        "1,(906) 555-1234,906-555-1234\n"
        "2,906.555.9999,906-555-9999\n"
        "3,906-555-0000,906-555-0000\n"
    )

    def test_apply_matches_golden_file(self, artifact, other_phone_csv, tmp_path):
        output = tmp_path / "cleaned.csv"
        code = main(["apply", str(artifact), str(other_phone_csv), "--output", str(output)])
        assert code == 0
        assert output.read_text(encoding="utf-8") == self.GOLDEN

    def test_apply_to_stdout_uses_artifact_column(self, artifact, other_phone_csv, capsys):
        code = main(["apply", str(artifact), str(other_phone_csv)])
        captured = capsys.readouterr()
        assert code == 0
        assert "906-555-9999" in captured.out
        assert "flagged" in captured.err

    def test_apply_in_place_overwrites_the_column(self, artifact, other_phone_csv, tmp_path):
        output = tmp_path / "inplace.csv"
        code = main(
            ["apply", str(artifact), str(other_phone_csv), "--in-place", "--output", str(output)]
        )
        assert code == 0
        with output.open(newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert [row["phone"] for row in rows] == [
            "906-555-1234", "906-555-9999", "906-555-0000",
        ]
        assert "phone_transformed" not in rows[0]

    def test_apply_flags_unmatched_rows_with_exit_1(self, artifact, tmp_path, capsys):
        path = tmp_path / "noisy.csv"
        path.write_text("phone\nN/A?!\n", encoding="utf-8")
        code = main(["apply", str(artifact), str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "1 flagged" in captured.err
        assert "N/A?!" in captured.out

    def test_apply_rejects_colliding_output_column(self, artifact, other_phone_csv, capsys):
        code = main(
            ["apply", str(artifact), str(other_phone_csv), "--output-column", "id"]
        )
        assert code == 2
        assert "already exists" in capsys.readouterr().err

    def test_apply_unknown_column_is_an_error(self, artifact, other_phone_csv, capsys):
        code = main(["apply", str(artifact), str(other_phone_csv), "--column", "fax"])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_apply_rejects_malformed_artifact(self, other_phone_csv, tmp_path, capsys):
        bogus = tmp_path / "bogus.clx.json"
        bogus.write_text("{}", encoding="utf-8")
        code = main(["apply", str(bogus), str(other_phone_csv)])
        assert code == 2
        assert "format" in capsys.readouterr().err

    def test_apply_accepts_zero_based_column_index(self, artifact, other_phone_csv, capsys):
        code = main(["apply", str(artifact), str(other_phone_csv), "--column", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "906-555-9999" in captured.out

    def test_in_place_and_output_column_are_mutually_exclusive(
        self, artifact, other_phone_csv, capsys
    ):
        with pytest.raises(SystemExit):
            main(
                [
                    "apply", str(artifact), str(other_phone_csv),
                    "--in-place", "--output-column", "cleaned",
                ]
            )
        assert "not allowed with" in capsys.readouterr().err

    def test_apply_streams_large_files_in_chunks(self, artifact, tmp_path):
        path = tmp_path / "big.csv"
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["phone"])
            for index in range(500):
                writer.writerow([f"906.{index % 900 + 100}.{index % 9000 + 1000}"])
        output = tmp_path / "big_out.csv"
        code = main(
            ["apply", str(artifact), str(path), "--chunk-size", "7", "--output", str(output)]
        )
        assert code == 0
        with output.open(newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 500
        assert all(row["phone_transformed"].count("-") == 2 for row in rows)


class TestTransformCollision:
    def test_transform_rejects_colliding_output_column(self, phone_csv, capsys):
        code = main(
            [
                "transform", str(phone_csv), "--column", "phone",
                "--target-pattern", "<D>3'-'<D>3'-'<D>4",
                "--output-column", "name",
            ]
        )
        assert code == 2
        assert "already exists" in capsys.readouterr().err
