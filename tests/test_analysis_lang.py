"""Exact language queries of the analyzer (repro.analysis.lang).

These are the decidable primitives every reachability/coverage verdict
rests on: subset simulation over chain NFAs on a finite atom alphabet.
Each test states a language fact a human can verify by hand.
"""

from __future__ import annotations

import pytest

from repro.analysis.lang import (
    atom_alphabet,
    contains_nfa,
    difference_witness,
    guard_satisfiable,
    keyword_always_present,
    languages_overlap,
    nfa_accepts,
    overlap_witness,
    pattern_nfa,
    random_sample_string,
    sample_string,
    subsumed_by_union,
)
from repro.patterns.parse import parse_pattern as P


def _nfa(pattern, atoms):
    return pattern_nfa(pattern, atoms)


def _subsumed(child_notation, *parent_notations):
    patterns = [P(child_notation)] + [P(n) for n in parent_notations]
    atoms = atom_alphabet(patterns)
    machines = [pattern_nfa(p, atoms) for p in patterns]
    return subsumed_by_union(machines[0], machines[1:], atoms)


def _overlap(first_notation, second_notation, excluding=()):
    patterns = [P(first_notation), P(second_notation)] + [P(n) for n in excluding]
    atoms = atom_alphabet(patterns)
    machines = [pattern_nfa(p, atoms) for p in patterns]
    return languages_overlap(machines[0], machines[1], atoms, excluding=machines[2:])


class TestAtomAlphabet:
    def test_literals_plus_one_representative_per_pool(self):
        atoms = atom_alphabet([P("<D>3'-'<D>4")])
        assert "-" in atoms  # the literal itself
        assert any(a.isdigit() for a in atoms)
        assert any(a.islower() for a in atoms)
        assert any(a.isupper() for a in atoms)
        assert "_" in atoms

    def test_representative_avoids_claimed_literals(self):
        # '0' is a literal, so "some other digit" must be a different one.
        atoms = atom_alphabet([P("'0'<D>2")])
        digits = [a for a in atoms if a.isdigit()]
        assert "0" in digits and len(digits) >= 2

    def test_extra_text_contributes_atoms(self):
        atoms = atom_alphabet([P("<D>2")], extra_text=["kg"])
        assert "k" in atoms and "g" in atoms


class TestSubsumption:
    def test_equal_patterns_subsume(self):
        assert _subsumed("<D>3'-'<D>4", "<D>3'-'<D>4")

    def test_fixed_count_inside_plus(self):
        assert _subsumed("<D>3", "<D>+")
        assert not _subsumed("<D>+", "<D>3")

    def test_class_hierarchy(self):
        assert _subsumed("<L>4", "<A>4")
        assert _subsumed("<D>2", "<AN>2")
        assert not _subsumed("<A>4", "<L>4")

    def test_literal_inside_class(self):
        assert _subsumed("'ab'", "<L>2")
        assert not _subsumed("<L>2", "'ab'")

    def test_union_coverage_needs_both_parents(self):
        # <AN>1 = letter|digit|-|_ is NOT covered by letters or digits
        # alone, nor by both together (the '-' and '_' strings remain).
        assert not _subsumed("<AN>1", "<A>1")
        assert not _subsumed("<AN>1", "<A>1", "<D>1")
        assert _subsumed("<AN>1", "<A>1", "<D>1", "'-'", "'_'")

    def test_plus_split_is_not_covered_by_fixed_unions(self):
        assert not _subsumed("<D>+", "<D>1", "<D>2", "<D>3")

    def test_empty_parents_never_subsume(self):
        assert not _subsumed("<D>1")


class TestOverlap:
    def test_disjoint_classes_do_not_overlap(self):
        assert not _overlap("<D>3", "<L>3")

    def test_shared_instances_overlap(self):
        assert _overlap("<D>+", "<D>3")
        assert _overlap("<A>2", "<L>2")

    def test_excluding_removes_the_only_witnesses(self):
        # <D>3 and <D>+ overlap exactly on <D>3 strings; excluding them
        # leaves nothing.
        assert not _overlap("<D>3", "<D>+", excluding=["<D>3"])
        assert _overlap("<D>+", "<AN>+", excluding=["<D>3"])


class TestGuards:
    def test_satisfiable_when_keyword_fits_a_class_run(self):
        atoms = atom_alphabet([P("<L>+")], extra_text=["kg"])
        machine = pattern_nfa(P("<L>+"), atoms)
        assert guard_satisfiable(machine, "kg", atoms)

    def test_unsatisfiable_when_no_match_contains_keyword(self):
        atoms = atom_alphabet([P("<U>3")], extra_text=["kg"])
        machine = pattern_nfa(P("<U>3"), atoms)
        assert not guard_satisfiable(machine, "kg", atoms)

    def test_case_insensitive_crosses_class_boundaries(self):
        atoms = atom_alphabet([P("<U>2")], extra_text=["kg", "KG"])
        machine = pattern_nfa(P("<U>2"), atoms)
        assert not guard_satisfiable(machine, "kg", atoms, case_sensitive=True)
        assert guard_satisfiable(machine, "kg", atoms, case_sensitive=False)

    def test_always_present_inside_literal_run(self):
        assert keyword_always_present(P("'lbs.'<D>+"), "lbs")
        assert keyword_always_present(P("<D>+' lbs'"), "LBS", case_sensitive=False)
        assert not keyword_always_present(P("<L>3"), "lbs")

    def test_always_present_across_adjacent_literal_tokens(self):
        # The keyword spans two literal tokens — the single-literal scan
        # used to miss this (a documented false negative); the exact
        # inclusion check does not.
        assert keyword_always_present(P("'lb''s.'<D>+"), "lbs")
        assert keyword_always_present(P("<D>+'k''g'"), "kg")

    def test_never_present_through_class_tokens_is_exact(self):
        # '0.' is NOT always present: <D>1 can be another digit.  But
        # every match of '0'<D>1 does contain '0'.
        assert not keyword_always_present(P("'0'<D>1'.'"), "0.")
        assert keyword_always_present(P("'0'<D>1'.'"), "0")

    def test_empty_keyword_is_trivially_present(self):
        assert keyword_always_present(P("<D>3"), "")

    def test_exactness_against_witness_search(self):
        # keyword_always_present must agree with the witness machinery:
        # when it says "not always", a concrete pattern match without
        # the keyword exists (and really matches the pattern's regex).
        from repro.patterns.regex import compile_pattern

        cases = [
            ("'lbs.'<D>+", "lbs"),
            ("'lb''s.'<D>+", "lbs"),
            ("<L>3", "lbs"),
            ("'0'<D>1'.'", "0."),
            ("<D>+' kg'", "kg"),
            ("<U>2'-'<D>2", "A-"),
        ]
        for notation, keyword in cases:
            pattern = P(notation)
            atoms = atom_alphabet([pattern], extra_text=[keyword])
            witness = difference_witness(
                pattern_nfa(pattern, atoms),
                [contains_nfa(keyword, atoms)],
                atoms,
            )
            always = keyword_always_present(pattern, keyword)
            assert always == (witness is None), (notation, keyword, witness)
            if witness is not None:
                assert compile_pattern(pattern).match(witness)
                assert keyword not in witness


class TestContainsNfa:
    def test_substring_search_semantics(self):
        atoms = tuple("abx")
        machine = contains_nfa("ab", atoms)
        states = frozenset((0,))
        for char in "xabx":
            states = machine.step(states, char)
        assert machine.accepts_state(states)
        states = frozenset((0,))
        for char in "xbax":
            states = machine.step(states, char)
        assert not machine.accepts_state(states)


class TestSampleString:
    @pytest.mark.parametrize(
        "notation", ["<D>3'-'<D>4", "'ID-'<D>+", "<L>2<U>1", "<AN>+"]
    )
    def test_sample_matches_its_own_pattern(self, notation):
        from repro.patterns.regex import compile_pattern

        pattern = P(notation)
        assert compile_pattern(pattern).match(sample_string(pattern))
        assert compile_pattern(pattern).match(sample_string(pattern, plus_length=3))
