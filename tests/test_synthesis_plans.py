"""Tests for plan enumeration and MDL ranking (Section 6.3)."""

from __future__ import annotations

from repro.dsl.ast import AtomicPlan, ConstStr, Extract
from repro.patterns.matching import pattern_of_string
from repro.patterns.parse import parse_pattern
from repro.synthesis.alignment import align_tokens
from repro.synthesis.dag import AlignmentDAG
from repro.synthesis.plans import enumerate_plans, monotonicity_violations, rank_plans


class TestEnumeratePlans:
    def test_empty_target_yields_empty_plan(self):
        plans = enumerate_plans(AlignmentDAG(target_length=0))
        assert plans == [AtomicPlan(())]

    def test_no_path_yields_no_plans(self):
        dag = AlignmentDAG(target_length=2)
        dag.add_edge(0, 1, Extract(1))
        assert enumerate_plans(dag) == []

    def test_all_edge_combinations_enumerated(self):
        dag = AlignmentDAG(target_length=2)
        dag.add_edge(0, 1, Extract(1))
        dag.add_edge(0, 1, Extract(3))
        dag.add_edge(1, 2, ConstStr("-"))
        plans = enumerate_plans(dag)
        assert len(plans) == 2
        assert AtomicPlan((Extract(1), ConstStr("-"))) in plans
        assert AtomicPlan((Extract(3), ConstStr("-"))) in plans

    def test_max_plans_cap_respected(self):
        source = pattern_of_string("a.b.c.d.e.f")
        dag = align_tokens(source, source)
        assert len(enumerate_plans(dag, max_plans=10)) <= 10

    def test_plans_are_distinct(self):
        source = parse_pattern("<D>3'.'<D>3'.'<D>4")
        target = parse_pattern("'('<D>3')'' '<D>3'-'<D>4")
        plans = enumerate_plans(align_tokens(source, target))
        assert len(plans) == len(set(plans))


class TestMonotonicityViolations:
    def test_in_order_extracts_have_none(self):
        plan = AtomicPlan((Extract(1), ConstStr("-"), Extract(3), Extract(5)))
        assert monotonicity_violations(plan) == 0

    def test_reuse_counts(self):
        plan = AtomicPlan((Extract(1), Extract(1)))
        assert monotonicity_violations(plan) == 1

    def test_backwards_counts(self):
        plan = AtomicPlan((Extract(3), Extract(1)))
        assert monotonicity_violations(plan) == 1

    def test_const_only_plan_has_none(self):
        assert monotonicity_violations(AtomicPlan((ConstStr("a"), ConstStr("b")))) == 0


class TestRankPlans:
    def test_simplest_plan_first_paper_example_9(self):
        source = parse_pattern("<D>2'/'<D>2'/'<D>4")
        target = parse_pattern("<D>2'/'<D>2")
        ranked = rank_plans(enumerate_plans(align_tokens(source, target)), source)
        assert ranked[0] == AtomicPlan((Extract(1, 3),))

    def test_order_preserving_tiebreak(self):
        """With equal MDL, the left-to-right non-reusing plan wins."""
        source = parse_pattern("<D>3'.'<D>3'.'<D>4")
        target = parse_pattern("<D>3'-'<D>3'-'<D>4")
        ranked = rank_plans(enumerate_plans(align_tokens(source, target)), source)
        best = ranked[0]
        extracts = [e for e in best.expressions if isinstance(e, Extract)]
        assert [e.start for e in extracts] == [1, 3, 5]

    def test_ranking_is_deterministic(self):
        source = parse_pattern("<D>3'.'<D>3'.'<D>4")
        target = parse_pattern("'('<D>3')'' '<D>3'-'<D>4")
        plans = enumerate_plans(align_tokens(source, target))
        assert rank_plans(plans, source) == rank_plans(list(reversed(plans)), source)

    def test_ranking_preserves_plan_multiset(self):
        source = parse_pattern("<D>2'/'<D>2")
        plans = enumerate_plans(align_tokens(source, source))
        ranked = rank_plans(plans, source)
        assert sorted(map(str, ranked)) == sorted(map(str, plans))
