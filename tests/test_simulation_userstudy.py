"""Tests for the simulated user studies (Figures 11, 12, 14)."""

from __future__ import annotations

import pytest

from repro.bench.phone import phone_user_study_cases
from repro.simulation.userstudy import (
    run_scalability_study,
    trace_clx,
    trace_flashfill,
    trace_regex_replace,
    trace_task,
)
from repro.simulation.verification import UserCostModel


@pytest.fixture(scope="module")
def study():
    return run_scalability_study()


class TestTraces:
    def test_trace_fields_consistent(self):
        task = phone_user_study_cases()[0]
        model = UserCostModel()
        for tracer in (trace_clx, trace_flashfill, trace_regex_replace):
            trace = tracer(task, model)
            assert trace.total_seconds == pytest.approx(
                trace.verification_seconds + trace.specification_seconds + trace.setup_seconds
            )
            assert trace.interactions == len(trace.timestamps)
            assert trace.timestamps == sorted(trace.timestamps)
            assert trace.perfect

    def test_trace_task_returns_three_systems(self):
        task = phone_user_study_cases()[0]
        traces = trace_task(task)
        assert set(traces) == {"CLX", "FlashFill", "RegexReplace"}


class TestScalabilityStudy:
    def test_three_cases_present(self, study):
        assert set(study) == {"10(2)", "100(4)", "300(6)"}

    def test_all_systems_complete_all_cases(self, study):
        for traces in study.values():
            for trace in traces.values():
                assert trace.perfect

    def test_clx_verification_growth_is_small(self, study):
        """The headline claim: CLX verification time stays nearly flat."""
        v10 = study["10(2)"]["CLX"].verification_seconds
        v300 = study["300(6)"]["CLX"].verification_seconds
        assert v300 / v10 < 3.0

    def test_flashfill_verification_growth_is_large(self, study):
        v10 = study["10(2)"]["FlashFill"].verification_seconds
        v300 = study["300(6)"]["FlashFill"].verification_seconds
        assert v300 / v10 > 8.0

    def test_clx_grows_slower_than_flashfill(self, study):
        clx_growth = (
            study["300(6)"]["CLX"].total_seconds / study["10(2)"]["CLX"].total_seconds
        )
        ff_growth = (
            study["300(6)"]["FlashFill"].total_seconds
            / study["10(2)"]["FlashFill"].total_seconds
        )
        assert clx_growth < ff_growth

    def test_regex_replace_is_most_expensive_on_small_data(self, study):
        """Hand-writing regexes dominates on the 10-row case (Figure 11a)."""
        traces = study["10(2)"]
        assert traces["RegexReplace"].total_seconds > traces["CLX"].total_seconds
        assert traces["RegexReplace"].total_seconds > traces["FlashFill"].total_seconds

    def test_interaction_counts_are_single_digit(self, study):
        """Figure 11b: every system needs only a handful of interactions."""
        for traces in study.values():
            for trace in traces.values():
                assert 1 <= trace.interactions <= 10

    def test_flashfill_interaction_gaps_grow_near_the_end(self, study):
        """Figure 11c: FlashFill's later interactions take longer and longer."""
        timestamps = study["300(6)"]["FlashFill"].timestamps
        gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
        if len(gaps) >= 2:
            assert gaps[-1] >= gaps[0]
