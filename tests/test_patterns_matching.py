"""Tests for pattern matching with per-token spans."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.patterns.matching import match_pattern, matches, pattern_of_string
from repro.patterns.parse import parse_pattern


class TestMatchPattern:
    def test_returns_per_token_substrings(self):
        pattern = parse_pattern("'('<D>3')'' '<D>3'-'<D>4")
        assert match_pattern("(734) 645-8397", pattern) == [
            "(", "734", ")", " ", "645", "-", "8397",
        ]

    def test_non_matching_returns_none(self):
        pattern = parse_pattern("<D>3")
        assert match_pattern("12", pattern) is None
        assert match_pattern("1234", pattern) is None
        assert match_pattern("abc", pattern) is None

    def test_plus_tokens_capture_full_runs(self):
        pattern = parse_pattern("<U>+'-'<D>+")
        assert match_pattern("CPT-00350", pattern) == ["CPT", "-", "00350"]

    def test_empty_pattern_matches_only_empty_string(self):
        empty = parse_pattern("")
        assert match_pattern("", empty) == []
        assert match_pattern("x", empty) is None

    def test_matches_boolean_form(self):
        pattern = parse_pattern("<D>2")
        assert matches("12", pattern)
        assert not matches("123", pattern)


class TestPatternOfString:
    def test_leaf_pattern(self):
        assert pattern_of_string("734-422-8073").notation() == "<D>3'-'<D>3'-'<D>4"

    def test_empty_string(self):
        assert len(pattern_of_string("")) == 0


ascii_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=40
)


class TestMatchingProperties:
    @given(ascii_text)
    def test_every_string_matches_its_own_pattern(self, value):
        pattern = pattern_of_string(value)
        pieces = match_pattern(value, pattern)
        assert pieces is not None
        assert "".join(pieces) == value

    @given(ascii_text, ascii_text)
    def test_match_spans_concatenate_to_the_input(self, value, other):
        pattern = pattern_of_string(value)
        pieces = match_pattern(other, pattern)
        if pieces is not None:
            assert "".join(pieces) == other
