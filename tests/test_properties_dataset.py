"""Property-based equivalence: partitioned profiling == concatenated profiling.

The dataset layer's core promise is that *how a column is split across
files never changes its profile*: profiling a dataset of N parts (any
N, any split points, CSV and JSONL mixed, any worker count) lowers to a
hierarchy identical to profiling the concatenated column in one serial
pass.

The generators are randomized over the bench corpora through the shared
``property_rng`` fixture — the seed is fixed by default and printed for
every test, so a failing draw replays with
``CLX_PROPERTY_SEED=<seed> pytest <test>``.
"""

from __future__ import annotations

import csv
import json

from repro.bench.generators import (
    addresses,
    dates,
    human_names,
    medical_codes,
    phone_numbers,
)
from repro.clustering.incremental import IncrementalProfiler
from repro.clustering.parallel import ParallelProfiler
from repro.dataset import Dataset

#: Randomized rounds per property; kept small enough for CI, large
#: enough that split points, part counts, and corpora all vary.
ROUNDS = 6

#: Worker counts every equivalence draw is checked at.
WORKER_COUNTS = (1, 2, 3, 5)


def _random_column(rng):
    """One bench-corpus column with randomized size and generator."""
    generators = [
        lambda seed, n: phone_numbers(
            n, ["paren_space", "dashes", "dots", "spaces"], seed=seed
        )[0],
        lambda seed, n: human_names(n, seed=seed)[0],
        lambda seed, n: dates(n, seed=seed)[0],
        lambda seed, n: addresses(n, seed=seed)[0],
        lambda seed, n: medical_codes(n, seed=seed)[0],
    ]
    make = rng.choice(generators)
    return make(rng.randrange(1_000_000), rng.randint(40, 400))


def _random_split(rng, column):
    """Split ``column`` into 1..8 contiguous, possibly empty runs."""
    part_count = rng.randint(1, 8)
    cuts = sorted(rng.randint(0, len(column)) for _ in range(part_count - 1))
    bounds = [0] + cuts + [len(column)]
    return [column[start:end] for start, end in zip(bounds, bounds[1:])]


def _write_parts(tmp_path, rng, chunks, mixed):
    """Write each chunk as a CSV or (when ``mixed``) JSONL partition."""
    for index, chunk in enumerate(chunks):
        if mixed and rng.random() < 0.5:
            path = tmp_path / f"part-{index:03d}.jsonl"
            with path.open("w", encoding="utf-8") as handle:
                for row, value in enumerate(chunk):
                    handle.write(json.dumps({"id": row, "phone": value}) + "\n")
        else:
            path = tmp_path / f"part-{index:03d}.csv"
            with path.open("w", newline="", encoding="utf-8") as handle:
                writer = csv.writer(handle)
                writer.writerow(["id", "phone"])
                for row, value in enumerate(chunk):
                    writer.writerow([row, value])
    return Dataset.resolve(str(tmp_path / "part-*"))


def _hierarchy_signature(profile):
    """Every layer's (pattern, size) rows — the full lowered hierarchy."""
    hierarchy = profile.to_hierarchy()
    return [
        [(node.pattern.notation(), node.size) for node in layer]
        for layer in hierarchy.layers
    ]


class TestPartitionedEquivalence:
    def test_any_split_any_workers_matches_concatenated(self, property_rng, tmp_path):
        rng = property_rng
        for round_index in range(ROUNDS):
            column = _random_column(rng)
            chunks = _random_split(rng, column)
            scratch = tmp_path / f"round-{round_index}"
            scratch.mkdir()
            dataset = _write_parts(scratch, rng, chunks, mixed=False)
            expected = _hierarchy_signature(IncrementalProfiler().profile(iter(column)))
            for workers in WORKER_COUNTS:
                profile = ParallelProfiler(workers=workers).profile_dataset(
                    dataset, "phone"
                )
                context = (
                    f"seed={rng.seed_value} round={round_index} workers={workers} "
                    f"parts={[len(chunk) for chunk in chunks]}"
                )
                assert profile.row_count == len(column), context
                assert _hierarchy_signature(profile) == expected, context

    def test_mixed_csv_and_jsonl_partitions(self, property_rng, tmp_path):
        rng = property_rng
        for round_index in range(ROUNDS):
            column = _random_column(rng)
            chunks = _random_split(rng, column)
            scratch = tmp_path / f"round-{round_index}"
            scratch.mkdir()
            dataset = _write_parts(scratch, rng, chunks, mixed=True)
            expected = _hierarchy_signature(IncrementalProfiler().profile(iter(column)))
            for workers in WORKER_COUNTS:
                profile = ParallelProfiler(workers=workers).profile_dataset(
                    dataset, "phone"
                )
                context = f"seed={rng.seed_value} round={round_index} workers={workers}"
                assert profile.row_count == len(column), context
                assert _hierarchy_signature(profile) == expected, context

    def test_split_points_never_change_the_fingerprint(self, property_rng, tmp_path):
        # The artifact-cache key depends on the profile fingerprint, so
        # re-partitioning a dataset must still hit the cache.
        rng = property_rng
        column = _random_column(rng)
        expected = IncrementalProfiler().profile(iter(column)).fingerprint()
        for round_index in range(ROUNDS):
            scratch = tmp_path / f"round-{round_index}"
            scratch.mkdir()
            dataset = _write_parts(scratch, rng, _random_split(rng, column), mixed=True)
            profile = ParallelProfiler(workers=2).profile_dataset(dataset, "phone")
            assert profile.fingerprint() == expected, (
                f"seed={rng.seed_value} round={round_index}"
            )
