"""Tests for the tokenizer (Section 4.1 rules)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tokens.classes import TokenClass
from repro.tokens.token import Token
from repro.tokens.tokenizer import detokenize_lengths, split_by_tokens, tokenize, tokenize_all


class TestTokenizeExamples:
    def test_paper_example_3(self):
        """'Bob123@gmail.com' -> [<U>, <L>2, <D>3, '@', <L>5, '.', <L>3]."""
        tokens = tokenize("Bob123@gmail.com")
        assert [t.notation() for t in tokens] == [
            "<U>", "<L>2", "<D>3", "'@'", "<L>5", "'.'", "<L>3",
        ]

    def test_phone_number(self):
        tokens = tokenize("(734) 645-8397")
        assert [t.notation() for t in tokens] == [
            "'('", "<D>3", "')'", "' '", "<D>3", "'-'", "<D>4",
        ]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_single_punctuation_characters_are_individual_literals(self):
        tokens = tokenize("--")
        assert len(tokens) == 2
        assert all(t.is_literal and t.literal == "-" for t in tokens)

    def test_most_precise_class_is_chosen(self):
        tokens = tokenize("cat")
        assert tokens == [Token.base(TokenClass.LOWER, 3)]

    def test_case_change_splits_runs(self):
        tokens = tokenize("McMillan")
        assert [t.notation() for t in tokens] == ["<U>", "<L>", "<U>", "<L>5"]

    def test_quantifiers_are_natural_numbers(self):
        for token in tokenize("abc123XYZ"):
            assert isinstance(token.quantifier, int)

    def test_unicode_characters_become_literals(self):
        tokens = tokenize("naïve")
        assert any(t.is_literal and t.literal == "ï" for t in tokens)

    def test_tokenize_all(self):
        results = tokenize_all(["a1", "b2"])
        assert len(results) == 2
        assert [t.notation() for t in results[0]] == ["<L>", "<D>"]


class TestSplitByTokens:
    def test_roundtrip(self):
        value = "Bob123@gmail.com"
        tokens = tokenize(value)
        pieces = split_by_tokens(value, tokens)
        assert "".join(pieces) == value
        assert pieces == ["Bob"[:1], "ob", "123", "@", "gmail", ".", "com"]

    def test_mismatched_length_raises(self):
        with pytest.raises(ValueError):
            split_by_tokens("abc", tokenize("abcd"))

    def test_detokenize_lengths_rejects_plus(self):
        from repro.tokens.token import PLUS

        with pytest.raises(ValueError):
            detokenize_lengths([Token.base(TokenClass.DIGIT, PLUS)])


# A printable-ASCII alphabet that keeps hypothesis inputs in the domain the
# tokenizer is designed for (the paper's data is ASCII).
ascii_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=40
)


class TestTokenizerProperties:
    @given(ascii_text)
    def test_tokens_cover_the_string_exactly(self, value):
        tokens = tokenize(value)
        assert sum(t.fixed_length for t in tokens) == len(value)

    @given(ascii_text)
    def test_split_reconstructs_the_string(self, value):
        tokens = tokenize(value)
        assert "".join(split_by_tokens(value, tokens)) == value

    @given(ascii_text)
    def test_each_token_matches_its_own_piece(self, value):
        tokens = tokenize(value)
        for token, piece in zip(tokens, split_by_tokens(value, tokens)):
            assert token.matches_text(piece)

    @given(ascii_text)
    def test_adjacent_base_tokens_never_share_a_class(self, value):
        tokens = tokenize(value)
        for left, right in zip(tokens, tokens[1:]):
            if not left.is_literal and not right.is_literal:
                assert left.klass is not right.klass

    @given(ascii_text)
    def test_tokenization_is_deterministic(self, value):
        assert tokenize(value) == tokenize(value)
