"""Tests for the phone user-study workload and the 47-task suite."""

from __future__ import annotations

import pytest

from repro.bench.phone import CASE_DEFINITIONS, phone_dataset, phone_user_study_cases
from repro.bench.suite import (
    benchmark_suite,
    explainability_quizzes,
    explainability_tasks,
    suite_statistics,
)
from repro.patterns.matching import pattern_of_string


class TestPhoneWorkload:
    def test_case_definitions_match_paper(self):
        assert [(name, count) for name, count, _formats in CASE_DEFINITIONS] == [
            ("10(2)", 10), ("100(4)", 100), ("300(6)", 300),
        ]

    def test_sizes_and_heterogeneity(self):
        for name, count, format_count in CASE_DEFINITIONS:
            raw, expected = phone_dataset(count, format_count, seed=331)
            assert len(raw) == count
            patterns = {pattern_of_string(value) for value in raw}
            assert len(patterns) == format_count
            assert set(raw) <= set(expected)

    def test_desired_form_is_dashes(self):
        raw, expected = phone_dataset(10, 2, seed=331)
        for desired in expected.values():
            assert pattern_of_string(desired).notation() == "<D>3'-'<D>3'-'<D>4"

    def test_too_many_formats_rejected(self):
        with pytest.raises(ValueError):
            phone_dataset(10, 99)

    def test_user_study_tasks(self):
        tasks = phone_user_study_cases()
        assert [task.size for task in tasks] == [10, 100, 300]
        assert all(task.source == "UserStudy" for task in tasks)


class TestBenchmarkSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return benchmark_suite()

    def test_47_tasks(self, suite):
        assert len(suite) == 47

    def test_source_counts_match_table_6(self, suite):
        counts = {}
        for task in suite:
            counts[task.source] = counts.get(task.source, 0) + 1
        assert counts == {
            "SyGuS": 27, "FlashFill": 10, "BlinkFill": 4, "PredProg": 3, "PROSE": 3,
        }

    def test_task_ids_are_unique(self, suite):
        ids = [task.task_id for task in suite]
        assert len(ids) == len(set(ids))

    def test_every_task_has_a_valid_target(self, suite):
        for task in suite:
            assert len(task.target_pattern()) >= 1

    def test_suite_is_deterministic(self, suite):
        again = benchmark_suite()
        assert [t.task_id for t in again] == [t.task_id for t in suite]
        assert [t.inputs for t in again] == [t.inputs for t in suite]

    def test_statistics_shape(self, suite):
        stats = suite_statistics(suite)
        sources = [row.source for row in stats]
        assert sources == ["SyGuS", "FlashFill", "BlinkFill", "PredProg", "PROSE", "Overall"]
        overall = stats[-1]
        assert overall.test_count == 47
        # Table 6 reports overall averages of ~43.6 rows and ~13 characters;
        # the synthetic regeneration should be in the same ballpark.
        assert 30 <= overall.average_size <= 60
        assert 10 <= overall.average_length <= 25


class TestExplainabilityTasks:
    def test_three_tasks_matching_table_5(self):
        tasks = explainability_tasks()
        assert len(tasks) == 3
        sizes = [task.size for task in tasks]
        assert sizes == [10, 10, 100]
        assert tasks[0].data_type == "human name"
        assert tasks[1].data_type == "address"
        assert tasks[2].data_type == "phone number"

    def test_quizzes_pair_with_tasks(self):
        quizzes = explainability_quizzes()
        assert len(quizzes) == 3
        for task, questions in quizzes:
            assert len(questions) == 3
