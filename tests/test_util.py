"""Tests for the shared utilities."""

from __future__ import annotations

import pytest

from repro.util.errors import CLXError, PatternParseError, SynthesisError, TransformError, ValidationError
from repro.util.rand import DEFAULT_SEED, digits, letters, make_rng, weighted_choice
from repro.util.sinks import AtomicSink
from repro.util.text import common_prefix_length, format_table, truncate
from repro.util.timing import Stopwatch
from repro.util.validate import validated_adaptive_target, validated_memo_size


class TestErrors:
    def test_all_errors_derive_from_clxerror(self):
        for error in (PatternParseError, SynthesisError, TransformError, ValidationError):
            assert issubclass(error, CLXError)

    def test_parse_error_keeps_source(self):
        error = PatternParseError("bad", source="<X>")
        assert error.source == "<X>"


class TestRand:
    def test_default_seed_is_stable(self):
        assert make_rng().random() == make_rng(DEFAULT_SEED).random()

    def test_explicit_seed(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_digits_and_letters(self):
        rng = make_rng(1)
        assert len(digits(rng, 6)) == 6
        assert digits(make_rng(1), 6).isdigit()
        assert letters(make_rng(1), 4).islower()
        assert letters(make_rng(1), 4, upper=True).isupper()

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            digits(make_rng(1), -1)
        with pytest.raises(ValueError):
            letters(make_rng(1), -1)

    def test_weighted_choice_validations(self):
        rng = make_rng(1)
        with pytest.raises(ValueError):
            weighted_choice(rng, [], [])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])
        assert weighted_choice(rng, ["a"], [1.0]) == "a"


class TestText:
    def test_truncate(self):
        assert truncate("short", 10) == "short"
        assert truncate("a" * 50, 10).endswith("…")
        assert len(truncate("a" * 50, 10)) == 10
        with pytest.raises(ValueError):
            truncate("x", 0)

    def test_format_table_alignment(self):
        table = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a  ")

    def test_common_prefix_length(self):
        assert common_prefix_length("abcd", "abxy") == 2
        assert common_prefix_length("", "x") == 0
        assert common_prefix_length("same", "same") == 4


class TestStopwatch:
    def test_measure_accumulates(self):
        watch = Stopwatch()
        with watch.measure("work"):
            pass
        with watch.measure("work"):
            pass
        assert watch.count("work") == 2
        assert watch.total("work") >= 0.0
        assert watch.mean("work") >= 0.0

    def test_unknown_name_is_zero(self):
        watch = Stopwatch()
        assert watch.total("nothing") == 0.0
        assert watch.mean("nothing") == 0.0
        assert watch.count("nothing") == 0

    def test_record_external_samples(self):
        watch = Stopwatch()
        watch.record("chunk", 0.5)
        watch.record("chunk", 1.5)
        assert watch.count("chunk") == 2
        assert watch.total("chunk") == 2.0
        assert watch.mean("chunk") == 1.0


class TestValidators:
    @pytest.mark.parametrize("good", [0, 1, 4096])
    def test_memo_size_accepts_non_negative_ints(self, good):
        assert validated_memo_size(good) == good

    @pytest.mark.parametrize("bad", [-1, -4096, 1.5, "16", None, True, False])
    def test_memo_size_rejects_bad_values(self, bad):
        with pytest.raises(ValidationError, match="--memo-size"):
            validated_memo_size(bad, "--memo-size")

    def test_adaptive_target_none_means_off(self):
        assert validated_adaptive_target(None) is None

    @pytest.mark.parametrize("good", [1, 50, 10_000])
    def test_adaptive_target_accepts_positive_ints(self, good):
        assert validated_adaptive_target(good) == good

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "50", True])
    def test_adaptive_target_rejects_bad_values(self, bad):
        with pytest.raises(ValidationError, match="--adaptive-chunks"):
            validated_adaptive_target(bad, "--adaptive-chunks")


class TestAtomicSink:
    def test_commit_renames_into_place(self, tmp_path):
        target = tmp_path / "out.txt"
        sink = AtomicSink(target).open()
        sink.write("hello\n")
        assert not target.exists()  # nothing at the final path until commit
        sink.commit()
        assert target.read_text() == "hello\n"

    def test_abort_leaves_final_path_untouched(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("original")
        sink = AtomicSink(target).open()
        sink.write("replacement")
        sink.abort()
        assert target.read_text() == "original"
        assert not list(tmp_path.glob(".out.txt.clx-tmp.*"))

    def test_open_after_commit_raises_clearly(self, tmp_path):
        sink = AtomicSink(tmp_path / "out.txt").open()
        sink.write("x")
        sink.commit()
        with pytest.raises(ValueError, match="already committed/aborted"):
            sink.open()

    def test_open_after_abort_raises_clearly(self, tmp_path):
        sink = AtomicSink(tmp_path / "out.txt").open()
        sink.abort()
        with pytest.raises(ValueError, match="already committed/aborted"):
            sink.open()

    def test_write_after_commit_names_the_real_cause(self, tmp_path):
        # The old message was a misleading "sink for X is not open".
        sink = AtomicSink(tmp_path / "out.txt").open()
        sink.commit()
        with pytest.raises(ValueError, match="already committed/aborted"):
            sink.write("late")

    def test_context_reuse_raises_clearly(self, tmp_path):
        sink = AtomicSink(tmp_path / "out.txt")
        with sink as handle:
            handle.write("first\n")
        with pytest.raises(ValueError, match="already committed/aborted"):
            with sink:
                pass  # pragma: no cover - open() raises before the body

    def test_commit_and_abort_stay_idempotent(self, tmp_path):
        target = tmp_path / "out.txt"
        sink = AtomicSink(target).open()
        sink.write("once\n")
        sink.commit()
        sink.commit()  # second commit is a no-op, not an error
        sink.abort()  # abort after commit is also a no-op
        assert target.read_text() == "once\n"

    def test_open_while_live_is_idempotent(self, tmp_path):
        target = tmp_path / "out.txt"
        sink = AtomicSink(target).open()
        sink.write("a")
        sink.open()  # re-open before commit keeps the same handle
        sink.write("b")
        sink.commit()
        assert target.read_text() == "ab"

    def test_empty_commit_produces_empty_file(self, tmp_path):
        target = tmp_path / "out.txt"
        AtomicSink(target).commit()
        assert target.exists() and target.read_text() == ""
