"""Tests for the shared utilities."""

from __future__ import annotations

import pytest

from repro.util.errors import CLXError, PatternParseError, SynthesisError, TransformError, ValidationError
from repro.util.rand import DEFAULT_SEED, digits, letters, make_rng, weighted_choice
from repro.util.text import common_prefix_length, format_table, truncate
from repro.util.timing import Stopwatch


class TestErrors:
    def test_all_errors_derive_from_clxerror(self):
        for error in (PatternParseError, SynthesisError, TransformError, ValidationError):
            assert issubclass(error, CLXError)

    def test_parse_error_keeps_source(self):
        error = PatternParseError("bad", source="<X>")
        assert error.source == "<X>"


class TestRand:
    def test_default_seed_is_stable(self):
        assert make_rng().random() == make_rng(DEFAULT_SEED).random()

    def test_explicit_seed(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_digits_and_letters(self):
        rng = make_rng(1)
        assert len(digits(rng, 6)) == 6
        assert digits(make_rng(1), 6).isdigit()
        assert letters(make_rng(1), 4).islower()
        assert letters(make_rng(1), 4, upper=True).isupper()

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            digits(make_rng(1), -1)
        with pytest.raises(ValueError):
            letters(make_rng(1), -1)

    def test_weighted_choice_validations(self):
        rng = make_rng(1)
        with pytest.raises(ValueError):
            weighted_choice(rng, [], [])
        with pytest.raises(ValueError):
            weighted_choice(rng, ["a"], [1.0, 2.0])
        assert weighted_choice(rng, ["a"], [1.0]) == "a"


class TestText:
    def test_truncate(self):
        assert truncate("short", 10) == "short"
        assert truncate("a" * 50, 10).endswith("…")
        assert len(truncate("a" * 50, 10)) == 10
        with pytest.raises(ValueError):
            truncate("x", 0)

    def test_format_table_alignment(self):
        table = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a  ")

    def test_common_prefix_length(self):
        assert common_prefix_length("abcd", "abxy") == 2
        assert common_prefix_length("", "x") == 0
        assert common_prefix_length("same", "same") == 4


class TestStopwatch:
    def test_measure_accumulates(self):
        watch = Stopwatch()
        with watch.measure("work"):
            pass
        with watch.measure("work"):
            pass
        assert watch.count("work") == 2
        assert watch.total("work") >= 0.0
        assert watch.mean("work") >= 0.0

    def test_unknown_name_is_zero(self):
        watch = Stopwatch()
        assert watch.total("nothing") == 0.0
        assert watch.mean("nothing") == 0.0
        assert watch.count("nothing") == 0
