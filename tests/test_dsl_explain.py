"""Tests for program explanation (UniFi -> Replace operations, Section 5)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl.ast import AtomicPlan, Branch, ConstStr, Extract, UniFiProgram
from repro.dsl.explain import explain_branch, explain_program
from repro.dsl.interpreter import apply_program
from repro.dsl.replace import apply_replacements
from repro.patterns.parse import parse_pattern
from repro.bench.phone import phone_dataset
from repro.clustering.profiler import profile
from repro.synthesis.synthesizer import synthesize


class TestExplainBranch:
    def _branch(self):
        return Branch(
            parse_pattern("<D>3'.'<D>3'.'<D>4"),
            AtomicPlan((Extract(1), ConstStr("-"), Extract(3), ConstStr("-"), Extract(5))),
        )

    def test_regex_is_anchored_and_grouped_per_token(self):
        operation = explain_branch(self._branch())
        assert operation.regex.startswith("^(") and operation.regex.endswith(")$")
        assert operation.regex.count("(") == 5

    def test_replacement_uses_dollar_references(self):
        operation = explain_branch(self._branch())
        assert operation.replacement == "$1-$3-$5"

    def test_description_is_wrangler_style(self):
        operation = explain_branch(self._branch())
        assert "{digit}3" in operation.description

    def test_explained_operation_behaves_like_the_branch(self):
        branch = self._branch()
        operation = explain_branch(branch)
        program = UniFiProgram((branch,))
        value = "734.236.3466"
        assert operation.apply(value) == apply_program(program, value).output

    def test_const_str_dollars_are_escaped(self):
        branch = Branch(parse_pattern("<D>2"), AtomicPlan((ConstStr("$"), Extract(1))))
        operation = explain_branch(branch)
        assert operation.apply("42") == "$42"

    def test_range_extract_expands_to_consecutive_groups(self):
        branch = Branch(parse_pattern("<U>+'-'<D>+"), AtomicPlan((ConstStr("["), Extract(1, 3), ConstStr("]"))))
        operation = explain_branch(branch)
        assert operation.replacement == "[$1$2$3]"
        assert operation.apply("CPT-00350") == "[CPT-00350]"


class TestExplainProgram:
    def test_one_operation_per_branch_in_order(self):
        program = UniFiProgram(
            (
                Branch(parse_pattern("<D>2"), AtomicPlan((Extract(1),))),
                Branch(parse_pattern("<L>+"), AtomicPlan((ConstStr("x"),))),
            )
        )
        operations = explain_program(program)
        assert len(operations) == 2
        assert operations[0].regex.startswith("^([0-9]{2})")


class TestExplanationFidelityProperty:
    """The explained Replace list transforms data exactly like the program."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_on_synthesized_phone_programs(self, seed):
        raw, _expected = phone_dataset(count=25, format_count=4, seed=seed)
        hierarchy = profile(raw)
        target = parse_pattern("<D>3'-'<D>3'-'<D>4")
        result = synthesize(hierarchy, target)
        operations = explain_program(result.program)
        for value in raw:
            expected = apply_program(result.program, value).output
            assert apply_replacements(operations, value) == expected
