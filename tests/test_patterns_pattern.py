"""Tests for the Pattern value object."""

from __future__ import annotations

from repro.patterns.parse import parse_pattern
from repro.patterns.pattern import Pattern
from repro.tokens.classes import TokenClass
from repro.tokens.token import Token


class TestBasics:
    def test_container_protocol(self):
        pattern = parse_pattern("<D>3'-'<D>4")
        assert len(pattern) == 3
        assert pattern[0] == Token.base(TokenClass.DIGIT, 3)
        assert list(pattern)[1] == Token.lit("-")
        assert bool(pattern)

    def test_empty_pattern_is_falsy(self):
        assert not Pattern([])

    def test_patterns_hash_and_compare_by_value(self):
        first = parse_pattern("<D>3'-'<D>4")
        second = parse_pattern("<D>3'-'<D>4")
        assert first == second
        assert hash(first) == hash(second)
        assert first != parse_pattern("<D>3'-'<D>3")

    def test_notation_roundtrip(self):
        source = "'('<D>3')'' '<D>3'-'<D>4"
        assert parse_pattern(source).notation() == source

    def test_with_tokens_returns_new_pattern(self):
        pattern = parse_pattern("<D>3")
        other = pattern.with_tokens([Token.base(TokenClass.DIGIT, 4)])
        assert other != pattern
        assert len(other) == 1


class TestFrequencies:
    """The Q statistic of Equation 1."""

    def test_counts_sum_of_quantifiers(self):
        pattern = parse_pattern("<D>3'-'<D>4")
        assert pattern.frequency(TokenClass.DIGIT) == 7
        assert pattern.frequency(TokenClass.UPPER) == 0

    def test_plus_counts_as_one(self):
        pattern = parse_pattern("<D>+'-'<D>2")
        assert pattern.frequency(TokenClass.DIGIT) == 3

    def test_literals_do_not_contribute(self):
        pattern = parse_pattern("'CPT''-'<D>5")
        assert pattern.frequency(TokenClass.UPPER) == 0
        assert pattern.frequency(TokenClass.DIGIT) == 5

    def test_paper_example_7_frequencies(self):
        target = parse_pattern("'['<U>+'-'<D>+']'")
        assert target.frequency(TokenClass.DIGIT) == 1
        assert target.frequency(TokenClass.UPPER) == 1

    def test_counts_per_class_are_independent(self):
        pattern = parse_pattern("<U>2<L>3<D>4")
        assert pattern.frequency(TokenClass.UPPER) == 2
        assert pattern.frequency(TokenClass.LOWER) == 3
        assert pattern.frequency(TokenClass.DIGIT) == 4
        assert pattern.frequency(TokenClass.ALPHA) == 0


class TestStructuralProperties:
    def test_base_and_literal_counts(self):
        pattern = parse_pattern("'['<U>3'-'<D>5']'")
        assert pattern.base_token_count == 2
        assert pattern.literal_token_count == 3

    def test_has_plus(self):
        assert parse_pattern("<D>+").has_plus
        assert not parse_pattern("<D>3").has_plus

    def test_fixed_length(self):
        assert parse_pattern("<D>3'-'<D>4").fixed_length == 8
        assert parse_pattern("<D>+'-'<D>4").fixed_length is None


class TestSubsumption:
    def test_pattern_subsumes_itself(self):
        pattern = parse_pattern("<D>3'-'<D>4")
        assert pattern.subsumes(pattern)

    def test_plus_subsumes_numeric(self):
        assert parse_pattern("<D>+").subsumes(parse_pattern("<D>5"))
        assert not parse_pattern("<D>5").subsumes(parse_pattern("<D>+"))

    def test_alpha_subsumes_lower_and_upper(self):
        assert parse_pattern("<A>3").subsumes(parse_pattern("<L>3"))
        assert parse_pattern("<A>+").subsumes(parse_pattern("<U>2"))
        assert not parse_pattern("<L>3").subsumes(parse_pattern("<A>3"))

    def test_alnum_subsumes_digits_and_alpha(self):
        assert parse_pattern("<AN>+").subsumes(parse_pattern("<D>4"))
        assert parse_pattern("<AN>+").subsumes(parse_pattern("<A>+"))

    def test_different_lengths_never_subsume(self):
        assert not parse_pattern("<D>3'-'<D>4").subsumes(parse_pattern("<D>3"))

    def test_base_parent_subsumes_compatible_literal_child(self):
        assert parse_pattern("<U>3").subsumes(parse_pattern("'CPT'"))
        assert not parse_pattern("<U>2").subsumes(parse_pattern("'CPT'"))
        assert not parse_pattern("<D>3").subsumes(parse_pattern("'CPT'"))

    def test_literal_parent_subsumes_only_equal_literal(self):
        assert parse_pattern("'-'").subsumes(parse_pattern("'-'"))
        assert not parse_pattern("'-'").subsumes(parse_pattern("'.'"))
        assert not parse_pattern("'-'").subsumes(parse_pattern("<D>1"))

    def test_paper_hierarchy_chain(self):
        """Leaf -> P1 -> P2 -> P3 from Figure 6 is an ascending chain."""
        leaf = parse_pattern("<U><L>2<D>3'@'<L>5'.'<L>3")
        level1 = parse_pattern("<U>+<L>+<D>+'@'<L>+'.'<L>+")
        level2 = parse_pattern("<A>+<D>+'@'<A>+'.'<A>+")
        assert level1.subsumes(leaf)
        assert not leaf.subsumes(level1)
        # level2 merges the leading alpha run, so it has fewer tokens and is
        # compared against level1 only after merging — here we check the
        # token-class relation on the unmerged prefix instead.
        assert level2.frequency(TokenClass.ALPHA) >= 0
