"""Tests for token alignment (Algorithm 3) and the alignment DAG."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl.ast import ConstStr, Extract
from repro.dsl.interpreter import apply_plan
from repro.patterns.matching import match_pattern, pattern_of_string
from repro.patterns.parse import parse_pattern
from repro.synthesis.alignment import align_tokens
from repro.synthesis.dag import AlignmentDAG
from repro.synthesis.plans import enumerate_plans


class TestAlignmentDAG:
    def test_add_edge_bounds_checked(self):
        dag = AlignmentDAG(target_length=3)
        with pytest.raises(ValueError):
            dag.add_edge(2, 2, Extract(1))
        with pytest.raises(ValueError):
            dag.add_edge(0, 4, Extract(1))

    def test_duplicate_expressions_ignored(self):
        dag = AlignmentDAG(target_length=1)
        dag.add_edge(0, 1, Extract(1))
        dag.add_edge(0, 1, Extract(1))
        assert dag.expression_count == 1

    def test_has_path_and_path_count(self):
        dag = AlignmentDAG(target_length=2)
        assert not dag.has_path()
        dag.add_edge(0, 1, Extract(1))
        assert not dag.has_path()
        dag.add_edge(1, 2, Extract(2))
        assert dag.has_path()
        assert dag.path_count() == 1
        dag.add_edge(0, 2, Extract(1, 2))
        assert dag.path_count() == 2

    def test_empty_target_has_trivial_path(self):
        assert AlignmentDAG(target_length=0).has_path()


class TestAlignTokensExample8:
    """Figure 9: aligning ddd.ddd.dddd to (ddd) ddd-dddd."""

    def setup_method(self):
        self.source = parse_pattern("<D>3'.'<D>3'.'<D>4")
        self.target = parse_pattern("'('<D>3')'' '<D>3'-'<D>4")
        self.dag = align_tokens(self.source, self.target)

    def test_digit_targets_align_to_digit_sources(self):
        # Target token 2 (<D>3) can come from source tokens 1 or 3.
        expressions = self.dag.expressions_on(1, 2)
        assert Extract(1) in expressions
        assert Extract(3) in expressions
        assert Extract(5) not in expressions  # <D>4 is not similar to <D>3

    def test_literal_targets_get_const_edges(self):
        assert ConstStr("(") in self.dag.expressions_on(0, 1)
        assert ConstStr("-") in self.dag.expressions_on(5, 6)

    def test_final_digit_aligns_to_final_source_token(self):
        assert self.dag.expressions_on(6, 7) == [Extract(5)]

    def test_path_exists(self):
        assert self.dag.has_path()


class TestSequentialExtractCombination:
    def test_figure_10_combination(self):
        """Adjacent source tokens feeding adjacent target tokens combine."""
        source = parse_pattern("<U><D>+")
        target = parse_pattern("<U><D>+")
        dag = align_tokens(source, target)
        assert Extract(1, 2) in dag.expressions_on(0, 2)

    def test_three_token_run_combines(self):
        source = parse_pattern("<U>+'-'<D>+")
        target = parse_pattern("<U>+'-'<D>+")
        dag = align_tokens(source, target)
        assert Extract(1, 3) in dag.expressions_on(0, 3)

    def test_non_consecutive_sources_do_not_combine(self):
        source = parse_pattern("<D>2'/'<D>2")
        target = parse_pattern("<D>2<D>2")
        dag = align_tokens(source, target)
        # Extract(1) then Extract(3) are not consecutive in the source, so
        # no combined Extract(1,3) edge may exist for the pair.
        assert Extract(1, 3) not in dag.expressions_on(0, 2)


class TestSoundness:
    """Appendix A soundness: every enumerated plan transforms a matching
    string into a string of the target pattern."""

    CASES = [
        ("734.236.3466", "'('<D>3')'' '<D>3'-'<D>4"),
        ("CPT-00350", "'['<U>+'-'<D>+']'"),
        ("[CPT-00340", "'['<U>+'-'<D>+']'"),
        ("John Smith", "<U><L>+','' '<U>'.'"),
    ]

    @pytest.mark.parametrize("raw, target_notation", CASES)
    def test_all_plans_produce_target_shaped_output(self, raw, target_notation):
        source = pattern_of_string(raw)
        target = parse_pattern(target_notation)
        dag = align_tokens(source, target)
        plans = enumerate_plans(dag, max_plans=500)
        assert plans, "expected at least one plan"
        token_texts = match_pattern(raw, source)
        for plan in plans:
            output = apply_plan(plan, token_texts)
            assert match_pattern(output, target) is not None


class TestCompleteness:
    """Appendix A completeness: if a UniFi plan exists, alignment finds one.

    We verify the constructive cases the paper uses: for every (source,
    target) pair of the running examples, the enumeration contains a plan
    producing the exact desired output.
    """

    CASES = [
        ("734.236.3466", "(734) 236-3466"),
        ("734-422-8073", "(734) 422-8073"),
        ("CPT-00350", "[CPT-00350]"),
        ("[CPT-00340", "[CPT-00340]"),
        ("CPT115", "[CPT-115]"),
        ("12/31/2017", "12/31"),
    ]

    @pytest.mark.parametrize("raw, desired", CASES)
    def test_desired_output_is_reachable(self, raw, desired):
        source = pattern_of_string(raw)
        target = pattern_of_string(desired)
        dag = align_tokens(source, target)
        token_texts = match_pattern(raw, source)
        outputs = set()
        for plan in enumerate_plans(dag, max_plans=5000):
            outputs.add(apply_plan(plan, token_texts))
        assert desired in outputs


ascii_word = st.text(
    alphabet=st.characters(min_codepoint=48, max_codepoint=122), min_size=1, max_size=12
)


class TestAlignmentProperties:
    @settings(max_examples=60, deadline=None)
    @given(ascii_word)
    def test_identity_transformation_always_possible(self, value):
        """A string can always be 'transformed' into its own pattern."""
        source = pattern_of_string(value)
        dag = align_tokens(source, source)
        assert dag.has_path()
        token_texts = match_pattern(value, source)
        outputs = {
            apply_plan(plan, token_texts)
            for plan in enumerate_plans(dag, max_plans=200)
        }
        assert value in outputs
