"""Fuzz the JSONL apply path against the stdlib ``json`` oracle.

Adversarial JSON Lines partitions — quote/backslash escapes, unicode,
newlines and control characters inside strings, missing keys, huge
lines, non-string values — must round-trip through the mixed-format
apply pipeline to exactly what parsing each line with the ``json``
module and transforming the value by hand predicts.  Malformed lines
(raw newlines breaking a string, truncated objects, non-object rows,
plain garbage) must raise :class:`~repro.util.errors.CLXError` naming
the file and the exact 1-based line, and must never corrupt the
records around them.

Seeded through ``property_rng``; replay any failure with
``CLX_PROPERTY_SEED=<seed> pytest <test>``.
"""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.bench.generators import phone_numbers
from repro.core.session import CLXSession
from repro.dataset import Dataset
from repro.engine.parallel import ShardedTableExecutor
from repro.util.errors import CLXError

ROUNDS = 6

#: Character pool biased toward JSON-hostile content.
_NASTY = (
    '"\\\n\r\t\0\x1b{}[],:'
    "abc0123456789 é中文\U0001f600  ￿"
)


def _nasty_string(rng, max_length=40):
    if rng.random() < 0.05:
        # Huge line: a single multi-kilobyte value must neither split
        # nor starve the chunker.
        return "x" * rng.randint(5_000, 20_000) + rng.choice('"\\\n')
    return "".join(
        rng.choice(_NASTY) for _ in range(rng.randint(0, max_length))
    )


def _nasty_value(rng):
    roll = rng.random()
    if roll < 0.5:
        return _nasty_string(rng)
    if roll < 0.62:
        return rng.choice([None, True, False])
    if roll < 0.74:
        return rng.choice([0, -17, 3.5, 1e300])
    if roll < 0.86:
        return rng.choice([[1, "a"], {"nested": True}, {}])
    return phone_numbers(1, ["dots"], seed=rng.randrange(10_000))[0][0]


def _stringify(value):
    """The shared ingestion rule (`jsonl_cell`): missing/None -> '',
    strings untouched, everything else keeps its JSON form."""
    if value is None:
        return ""
    if isinstance(value, str):
        return value
    return json.dumps(value, ensure_ascii=False)


@pytest.fixture(scope="module")
def engine():
    raw, _ = phone_numbers(120, ["paren_space", "dashes", "dots"], seed=97)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    return session.engine()


def _write_records(path, records):
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, ensure_ascii=False) + "\n")


def _random_records(rng, count):
    records = []
    for index in range(count):
        record = {"id": str(index)}
        if rng.random() < 0.9:  # ~10% of rows miss the programmed key
            record["phone"] = _nasty_value(rng)
        records.append(record)
    return records


class TestAdversarialJsonlRoundTrip:
    def test_matches_the_json_module_oracle(self, engine, property_rng, tmp_path):
        rng = property_rng
        for round_index in range(ROUNDS):
            records = _random_records(rng, rng.randint(1, 60))
            path = tmp_path / f"round-{round_index}.jsonl"
            _write_records(path, records)
            # The oracle re-reads the bytes with the stdlib alone.  A
            # JSONL physical line ends at "\n" and nothing else —
            # splitlines() would also split on raw U+2028-style
            # separators json.dumps(ensure_ascii=False) leaves inside
            # strings, which no reader in the pipeline does.
            oracle = [
                json.loads(line)
                for line in path.read_text(encoding="utf-8").split("\n")
                if line
            ]
            assert oracle == records
            expected = [
                [
                    _stringify(record.get("id")),
                    _stringify(record.get("phone")),
                    engine.run_one(_stringify(record.get("phone"))).output,
                ]
                for record in oracle
            ]
            dataset = Dataset.resolve(str(path))
            workers = rng.choice([1, 2, 3])
            context = f"seed={rng.seed_value} round={round_index} workers={workers}"
            for out_format in ("csv", "jsonl"):
                with ShardedTableExecutor(
                    {"phone": engine},
                    ["id", "phone"],
                    out_format=out_format,
                    workers=workers,
                    chunk_size=rng.randint(1, 16),
                ) as executor:
                    encoded = executor.header_text() + "".join(
                        chunk
                        for _, (chunk, _, _, _) in executor.run_dataset(
                            dataset, shard_bytes=rng.choice([256, 1 << 20])
                        )
                    )
                if out_format == "jsonl":
                    rows = [
                        [row["id"], row["phone"], row["phone_transformed"]]
                        for row in (
                            json.loads(line) for line in encoded.split("\n") if line
                        )
                    ]
                else:
                    rows = [
                        [row["id"], row["phone"], row["phone_transformed"]]
                        for row in csv.DictReader(io.StringIO(encoded))
                    ]
                assert rows == expected, f"{context} sink={out_format}"


def _corrupt(rng, line):
    """Turn one valid JSONL line into something malformed."""
    roll = rng.random()
    if roll < 0.3:
        return line[: rng.randint(1, max(1, len(line) - 1))]  # truncated object
    if roll < 0.55:
        return json.dumps([1, 2, 3])  # not an object
    if roll < 0.8:
        return "not json at all"
    return line + "}"  # trailing garbage


class TestMalformedLines:
    def test_malformed_line_names_file_and_line(self, engine, property_rng, tmp_path):
        rng = property_rng
        for round_index in range(ROUNDS):
            records = _random_records(rng, rng.randint(3, 40))
            lines = [json.dumps(record, ensure_ascii=False) for record in records]
            victim = rng.randrange(len(lines))
            lines[victim] = _corrupt(rng, lines[victim])
            path = tmp_path / f"bad-{round_index}.jsonl"
            path.write_text("\n".join(lines) + "\n", encoding="utf-8")
            dataset = Dataset.resolve(str(path))
            with ShardedTableExecutor(
                {"phone": engine},
                ["id", "phone"],
                workers=rng.choice([1, 2]),
                chunk_size=rng.randint(1, 8),
            ) as executor:
                with pytest.raises(CLXError) as caught:
                    list(executor.run_dataset(dataset, shard_bytes=rng.choice([128, 1 << 20])))
            message = str(caught.value)
            context = f"seed={rng.seed_value} round={round_index} victim={victim}"
            assert path.name in message, context
            assert f"line {victim + 1}" in message, context

    def test_raw_newline_inside_a_string_cannot_cross_records(
        self, engine, property_rng, tmp_path
    ):
        # A literal newline is illegal inside a JSON string; splitting a
        # record across physical lines must fail on *that* line — the
        # neighboring records still apply cleanly once it is removed.
        rng = property_rng
        records = _random_records(rng, 12)
        lines = [json.dumps(record, ensure_ascii=False) for record in records]
        victim = rng.randrange(len(lines))
        broken = f'{{"id": "x", "phone": "b\nroken"}}'
        lines[victim] = broken
        path = tmp_path / "newline.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with ShardedTableExecutor(
            {"phone": engine}, ["id", "phone"], workers=1
        ) as executor:
            with pytest.raises(CLXError, match=rf"newline\.jsonl line {victim + 1}"):
                list(executor.run_dataset(Dataset.resolve(str(path))))

        # Neighbors survive: drop the broken record and every remaining
        # row comes out exactly as the oracle predicts.
        clean = lines[:victim] + lines[victim + 1 :]
        path.write_text("\n".join(clean) + "\n", encoding="utf-8")
        with ShardedTableExecutor(
            {"phone": engine}, ["id", "phone"], workers=1
        ) as executor:
            encoded = executor.header_text() + "".join(
                chunk
                for _, (chunk, _, _, _) in executor.run_dataset(Dataset.resolve(str(path)))
            )
        rows = list(csv.DictReader(io.StringIO(encoded)))
        survivors = records[:victim] + records[victim + 1 :]
        assert [row["phone"] for row in rows] == [
            _stringify(record.get("phone")) for record in survivors
        ], f"seed={rng.seed_value}"
