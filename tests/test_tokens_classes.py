"""Tests for repro.tokens.classes (Table 2 token classes)."""

from __future__ import annotations

import pytest

from repro.tokens.classes import (
    ALL_BASE_CLASSES,
    GENERALIZATION_ORDER,
    TokenClass,
    most_precise_class,
)


class TestTokenClassMembership:
    def test_digit_accepts_digits_only(self):
        assert TokenClass.DIGIT.accepts_char("5")
        assert not TokenClass.DIGIT.accepts_char("a")
        assert not TokenClass.DIGIT.accepts_char("-")

    def test_lower_accepts_lowercase_only(self):
        assert TokenClass.LOWER.accepts_char("x")
        assert not TokenClass.LOWER.accepts_char("X")
        assert not TokenClass.LOWER.accepts_char("3")

    def test_upper_accepts_uppercase_only(self):
        assert TokenClass.UPPER.accepts_char("Q")
        assert not TokenClass.UPPER.accepts_char("q")

    def test_alpha_accepts_both_cases(self):
        assert TokenClass.ALPHA.accepts_char("a")
        assert TokenClass.ALPHA.accepts_char("Z")
        assert not TokenClass.ALPHA.accepts_char("7")

    def test_alnum_accepts_table2_character_class(self):
        # Table 2: [a-zA-Z0-9_-]
        for char in "aZ9_-":
            assert TokenClass.ALNUM.accepts_char(char)
        assert not TokenClass.ALNUM.accepts_char(" ")
        assert not TokenClass.ALNUM.accepts_char(".")

    def test_literal_accepts_nothing_by_class(self):
        assert not TokenClass.LITERAL.accepts_char("a")

    def test_non_ascii_characters_rejected(self):
        assert not TokenClass.LOWER.accepts_char("é")
        assert not TokenClass.DIGIT.accepts_char("٣")  # Arabic-Indic digit


class TestNotationAndRegex:
    @pytest.mark.parametrize(
        "klass, notation",
        [
            (TokenClass.DIGIT, "<D>"),
            (TokenClass.LOWER, "<L>"),
            (TokenClass.UPPER, "<U>"),
            (TokenClass.ALPHA, "<A>"),
            (TokenClass.ALNUM, "<AN>"),
        ],
    )
    def test_notation_matches_paper(self, klass, notation):
        assert klass.notation == notation

    @pytest.mark.parametrize(
        "klass, regex",
        [
            (TokenClass.DIGIT, "[0-9]"),
            (TokenClass.LOWER, "[a-z]"),
            (TokenClass.UPPER, "[A-Z]"),
            (TokenClass.ALPHA, "[a-zA-Z]"),
            (TokenClass.ALNUM, "[a-zA-Z0-9_-]"),
        ],
    )
    def test_char_regex_matches_table2(self, klass, regex):
        assert klass.char_regex == regex

    def test_base_classes_are_base(self):
        for klass in ALL_BASE_CLASSES:
            assert klass.is_base
        assert not TokenClass.LITERAL.is_base


class TestGeneralization:
    def test_every_class_generalizes_itself(self):
        for klass in ALL_BASE_CLASSES:
            assert klass.generalizes(klass)

    def test_alpha_generalizes_lower_and_upper(self):
        assert TokenClass.ALPHA.generalizes(TokenClass.LOWER)
        assert TokenClass.ALPHA.generalizes(TokenClass.UPPER)
        assert not TokenClass.ALPHA.generalizes(TokenClass.DIGIT)

    def test_alnum_generalizes_everything_alphanumeric(self):
        for klass in (TokenClass.LOWER, TokenClass.UPPER, TokenClass.ALPHA, TokenClass.DIGIT):
            assert TokenClass.ALNUM.generalizes(klass)

    def test_lower_does_not_generalize_alpha(self):
        assert not TokenClass.LOWER.generalizes(TokenClass.ALPHA)

    def test_generalization_order_targets(self):
        assert GENERALIZATION_ORDER[TokenClass.LOWER] is TokenClass.ALPHA
        assert GENERALIZATION_ORDER[TokenClass.UPPER] is TokenClass.ALPHA
        assert GENERALIZATION_ORDER[TokenClass.ALPHA] is TokenClass.ALNUM
        assert GENERALIZATION_ORDER[TokenClass.DIGIT] is TokenClass.ALNUM


class TestMostPreciseClass:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("123", TokenClass.DIGIT),
            ("cat", TokenClass.LOWER),
            ("IBM", TokenClass.UPPER),
            ("Excel", TokenClass.ALPHA),
            ("Excel2013", TokenClass.ALNUM),
            ("a-b", TokenClass.ALNUM),
        ],
    )
    def test_examples_from_table2(self, text, expected):
        assert most_precise_class(text) is expected

    def test_empty_string_raises(self):
        with pytest.raises(ValueError):
            most_precise_class("")

    def test_uncoverable_text_raises(self):
        with pytest.raises(ValueError):
            most_precise_class("a b")
