"""Cross-backend differential properties for the IO registry.

Every ``(input, sink)`` pair in ``{csv, jsonl, parquet}²`` applies to
the same values the serial stdlib/pyarrow oracle produces — at worker
counts 1/2/3 and randomized ``--shard-bytes`` — and the sink bytes are
identical at every worker count.  Parquet legs skip cleanly when the
optional ``pyarrow`` dependency is absent.
"""

from __future__ import annotations

import csv
import json

import pytest

from repro.bench.phone import phone_dataset
from repro.core.session import CLXSession
from repro.dataset import Dataset
from repro.dataset.backends import pyarrow_available
from repro.engine.parallel import ShardedTableExecutor, apply_dataset

FORMATS = ("csv", "jsonl", "parquet")
WORKER_COUNTS = (1, 2, 3)

needs_pyarrow = pytest.mark.skipif(
    not pyarrow_available(), reason="pyarrow not installed (arrow extra)"
)


def _pair_params():
    for in_format in FORMATS:
        for out_format in FORMATS:
            marks = (
                [needs_pyarrow] if "parquet" in (in_format, out_format) else []
            )
            yield pytest.param(
                in_format, out_format, marks=marks, id=f"{in_format}-to-{out_format}"
            )


@pytest.fixture(scope="module")
def phone_engine():
    raw, _ = phone_dataset(count=120, format_count=4, seed=13)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    return session.engine()


def _write_part(path, fmt, rows):
    """Write ``rows`` (list of (id, phone) string pairs) as one partition."""
    if fmt == "csv":
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["id", "phone"])
            writer.writerows(rows)
    elif fmt == "jsonl":
        with path.open("w", encoding="utf-8") as handle:
            for row_id, phone in rows:
                handle.write(
                    json.dumps({"id": row_id, "phone": phone}, ensure_ascii=False)
                    + "\n"
                )
    else:
        import pyarrow as pa
        import pyarrow.parquet as pq

        table = pa.table(
            {
                "id": [row_id for row_id, _ in rows],
                "phone": [phone for _, phone in rows],
            }
        )
        # Several row groups so row-group shard planning has cuts to make.
        pq.write_table(table, path, row_group_size=4)
    return path


def _read_sink(path, fmt):
    """The (id, phone_transformed) pairs of one sink file, oracle-decoded."""
    if fmt == "csv":
        with path.open(newline="", encoding="utf-8") as handle:
            return [
                (row["id"], row["phone_transformed"])
                for row in csv.DictReader(handle)
            ]
    if fmt == "jsonl":
        with path.open(encoding="utf-8") as handle:
            return [
                (str(record["id"]), str(record["phone_transformed"]))
                for record in (json.loads(line) for line in handle)
            ]
    import pyarrow.parquet as pq

    table = pq.read_table(path)
    return list(
        zip(
            (str(v) for v in table.column("id").to_pylist()),
            (str(v) for v in table.column("phone_transformed").to_pylist()),
        )
    )


def _apply(engine, dataset, target, out_format, workers, shard_bytes):
    with ShardedTableExecutor(
        {"phone": engine},
        ["id", "phone"],
        workers=workers,
        out_format=out_format,
    ) as executor:
        result = apply_dataset(
            executor, dataset, output=target, shard_bytes=shard_bytes
        )
    return result


@pytest.mark.parametrize("in_format,out_format", _pair_params())
def test_every_pair_matches_the_serial_oracle(
    phone_engine, tmp_path, property_rng, in_format, out_format
):
    values, _ = phone_dataset(
        count=37, format_count=4, seed=property_rng.randrange(2**16)
    )
    rows = [(str(index), value) for index, value in enumerate(values)]
    suffix = {"csv": ".csv", "jsonl": ".jsonl", "parquet": ".parquet"}[in_format]
    part = _write_part(tmp_path / f"part-0{suffix}", in_format, rows)
    dataset = Dataset.resolve(str(part))
    expected = [
        (row_id, phone_engine.run_one(value).output) for row_id, value in rows
    ]

    sink_bytes = []
    for workers in WORKER_COUNTS:
        shard_bytes = property_rng.randrange(16, 4096)
        target = tmp_path / f"out-w{workers}.{out_format}"
        result = _apply(
            phone_engine, dataset, target, out_format, workers, shard_bytes
        )
        assert result.rows == len(rows)
        assert _read_sink(target, out_format) == expected
        sink_bytes.append(target.read_bytes())
    assert all(blob == sink_bytes[0] for blob in sink_bytes[1:])


@pytest.mark.parametrize("out_format", ["csv", "jsonl"])
def test_mixed_backend_dataset_matches_the_oracle(
    phone_engine, tmp_path, property_rng, out_format
):
    """csv+jsonl(+parquet) partitions splice into one value-exact sink."""
    values, _ = phone_dataset(
        count=30, format_count=4, seed=property_rng.randrange(2**16)
    )
    formats = ["csv", "jsonl"] + (["parquet"] if pyarrow_available() else [])
    chunk = len(values) // len(formats)
    parts, expected = [], []
    for slot, fmt in enumerate(formats):
        piece = values[slot * chunk : (slot + 1) * chunk]
        rows = [
            (str(slot * chunk + index), value) for index, value in enumerate(piece)
        ]
        suffix = {"csv": ".csv", "jsonl": ".jsonl", "parquet": ".parquet"}[fmt]
        parts.append(_write_part(tmp_path / f"part-{slot}{suffix}", fmt, rows))
        expected.extend(
            (row_id, phone_engine.run_one(value).output) for row_id, value in rows
        )
    dataset = Dataset.resolve([str(path) for path in parts])

    outputs = []
    for workers in WORKER_COUNTS:
        shard_bytes = property_rng.randrange(16, 2048)
        target = tmp_path / f"mixed-w{workers}.{out_format}"
        _apply(phone_engine, dataset, target, out_format, workers, shard_bytes)
        assert _read_sink(target, out_format) == expected
        outputs.append(target.read_bytes())
    assert all(blob == outputs[0] for blob in outputs[1:])
