"""Differential property suite for the memoized, merged-regex hot loop.

The claim under test: the optimized dispatch path — bounded-LRU value
memo plus one merged alternation regex over the leading unguarded
branches — is *outcome-identical* to the naive sequential branch loop.
Same output string, same matched pattern, same sink bytes at any worker
count.  The oracle is the same artifact reloaded with ``memo_size=0,
merged_dispatch=False``, which recovers the pre-optimization loop
exactly.

Coverage: all 47 benchmark-suite artifacts, their real task inputs,
deterministic + seeded-random samples from every branch's input
language, heavy-hitter repeated streams (the workload the memo exists
for), and mutated near-miss strings.  Run with
``CLX_PROPERTY_SEED=random`` for a fresh seed per run, or
``CLX_PROPERTY_SEED=<n>`` to replay a failure (see conftest).
"""

from __future__ import annotations

import csv

import pytest

from repro.analysis.lang import random_sample_string, sample_string
from repro.bench.suite import benchmark_suite
from repro.core.session import CLXSession
from repro.engine.compiled import CompiledProgram
from repro.engine.executor import TransformEngine

#: Random input samples drawn per branch pattern.
RANDOM_SAMPLES_PER_BRANCH = 3


@pytest.fixture(scope="module")
def suite_artifacts():
    """Every benchmark task compiled through the full session flow."""
    artifacts = {}
    for task in benchmark_suite():
        session = CLXSession(task.inputs)
        session.label_target(task.target_pattern())
        artifacts[task.task_id] = (
            session.compile(metadata={"column": task.task_id}),
            list(task.inputs),
        )
    return artifacts


def _dispatch_pair(compiled):
    """(optimized, naive-oracle) rebuilt from the same wire artifact."""
    artifact = compiled.dumps()
    fast = CompiledProgram.loads(artifact)
    naive = CompiledProgram.loads(artifact, memo_size=0, merged_dispatch=False)
    return fast, naive


def _mutate(value, rng):
    """A near-miss probe: one random edit of a real value."""
    if not value:
        return "x"
    index = rng.randrange(len(value))
    choice = rng.random()
    if choice < 0.4:
        return value[:index] + value[index + 1 :]  # delete
    replacement = rng.choice("0aZ .-@")
    if choice < 0.8:
        return value[:index] + replacement + value[index + 1 :]  # replace
    return value[:index] + replacement + value[index:]  # insert


def _probe_values(compiled, inputs, rng):
    """Real inputs, per-branch language samples, and mutated near-misses."""
    values = list(inputs)
    for branch in compiled.program.branches:
        values.append(sample_string(branch.pattern))
        values.append(sample_string(branch.pattern, plus_length=3))
        for _ in range(RANDOM_SAMPLES_PER_BRANCH):
            values.append(random_sample_string(branch.pattern, rng))
    values.extend(_mutate(value, rng) for value in inputs)
    values.append("")
    return values


class TestOutcomeIdentity:
    def test_all_suite_artifacts_match_naive_loop(self, suite_artifacts, property_rng):
        checked = 0
        for task_id, (compiled, inputs) in suite_artifacts.items():
            fast, naive = _dispatch_pair(compiled)
            for value in _probe_values(compiled, inputs, property_rng):
                expected = naive.run_one(value)
                actual = fast.run_one(value)
                assert (actual.output, actual.matched, actual.pattern) == (
                    expected.output,
                    expected.matched,
                    expected.pattern,
                ), f"{task_id}: dispatch diverged on {value!r}"
                checked += 1
        assert checked > 1000  # the suite must stay well exercised

    def test_batch_run_matches_naive_loop(self, suite_artifacts, property_rng):
        for task_id, (compiled, inputs) in suite_artifacts.items():
            fast, naive = _dispatch_pair(compiled)
            stream = _probe_values(compiled, inputs, property_rng)
            # Heavy-hitter repetition: every value appears several times
            # in shuffled order, so memo hits dominate.
            stream = stream * 3
            property_rng.shuffle(stream)
            fast_report = fast.run(stream)
            naive_report = naive.run(stream)
            assert fast_report.outputs == naive_report.outputs, task_id
            assert fast_report.matched_pattern == naive_report.matched_pattern, task_id
            stats = fast.memo_stats()
            assert stats["hits"] + stats["misses"] == len(stream), task_id
            assert stats["hits"] > 0, task_id

    def test_tiny_memo_thrash_stays_correct(self, suite_artifacts, property_rng):
        # A memo of 2 entries evicts constantly; correctness must not
        # depend on the bound.
        task_id, (compiled, inputs) = next(iter(suite_artifacts.items()))
        artifact = compiled.dumps()
        tiny = CompiledProgram.loads(artifact, memo_size=2)
        naive = CompiledProgram.loads(artifact, memo_size=0, merged_dispatch=False)
        stream = _probe_values(compiled, inputs, property_rng) * 4
        property_rng.shuffle(stream)
        assert tiny.run(stream).outputs == naive.run(stream).outputs


class TestSinkByteIdentity:
    """Optimized dispatch must not change a single sink byte.

    One representative artifact applied over a heavy-hitter CSV through
    the full dataset path: naive single-process oracle vs memo+merged at
    several worker counts, plus an adaptive-chunking run.
    """

    @pytest.fixture(scope="class")
    def apply_case(self, tmp_path_factory):
        task = next(iter(benchmark_suite()))
        session = CLXSession(task.inputs)
        session.label_target(task.target_pattern())
        compiled = session.compile(metadata={"column": "value"})
        artifact = compiled.dumps()

        root = tmp_path_factory.mktemp("dispatch-sink")
        source = root / "values.csv"
        rng_values = list(task.inputs) * 8 + ["definitely-not-matching"] * 5
        with source.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["value"])
            for value in rng_values:
                writer.writerow([value])
        return artifact, source, root

    def _apply_bytes(self, artifact, source, destination, **kwargs):
        engine = TransformEngine.loads(artifact, **kwargs.pop("load_kwargs", {}))
        engine.apply_dataset(source, "value", output=destination, **kwargs)
        return destination.read_bytes()

    def test_bytes_identical_at_any_worker_count(self, apply_case):
        artifact, source, root = apply_case
        oracle = self._apply_bytes(
            artifact,
            source,
            root / "naive.csv",
            load_kwargs={"memo_size": 0, "merged_dispatch": False},
            workers=1,
        )
        for workers in (1, 2, 3):
            actual = self._apply_bytes(
                artifact,
                source,
                root / f"fast-{workers}.csv",
                workers=workers,
                chunk_size=7,  # tiny chunks: many tasks, many memo reuses
            )
            assert actual == oracle, f"workers={workers}"

    def test_bytes_identical_with_adaptive_chunks(self, apply_case):
        artifact, source, root = apply_case
        oracle = self._apply_bytes(
            artifact,
            source,
            root / "static.csv",
            load_kwargs={"memo_size": 0, "merged_dispatch": False},
            workers=1,
        )
        adaptive = self._apply_bytes(
            artifact,
            source,
            root / "adaptive.csv",
            workers=2,
            chunk_size=5,
            adaptive_target_ms=1,  # aggressive resizing on purpose
        )
        assert adaptive == oracle
