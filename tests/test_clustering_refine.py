"""Tests for Algorithm 1 (agglomerative refinement of one layer)."""

from __future__ import annotations

from repro.clustering.cluster import initial_clusters
from repro.clustering.hierarchy import HierarchyNode
from repro.clustering.refine import refine_layer
from repro.patterns.generalize import generalize_alpha, generalize_quantifier


def _leaf_layer(values):
    clusters = initial_clusters(values, discover_constants=False)
    return [HierarchyNode(pattern=c.pattern, cluster=c, level=0) for c in clusters]


class TestRefineLayer:
    def test_children_with_same_parent_merge(self):
        # Two name shapes that share the quantifier-generalized parent.
        leaves = _leaf_layer(["John Smith", "Christopher Anderson"])
        assert len(leaves) == 2
        parents = refine_layer(leaves, generalize_quantifier, level=1)
        assert len(parents) == 1
        assert parents[0].pattern.notation() == "<U>+<L>+' '<U>+<L>+"
        assert len(parents[0].children) == 2

    def test_distinct_structures_stay_separate(self):
        leaves = _leaf_layer(["John Smith", "734-422-8073"])
        parents = refine_layer(leaves, generalize_quantifier, level=1)
        assert len(parents) == 2

    def test_every_child_is_claimed_exactly_once(self):
        leaves = _leaf_layer(
            ["John Smith", "Christopher Anderson", "734-422-8073", "999.111.2222", "N/A"]
        )
        parents = refine_layer(leaves, generalize_quantifier, level=1)
        claimed = [child for parent in parents for child in parent.children]
        assert sorted(id(c) for c in claimed) == sorted(id(l) for l in leaves)

    def test_parent_pattern_covers_children_values(self):
        """Every value under a child still matches the parent's pattern.

        (Pattern.subsumes is positional and strategy 2/3 may merge
        adjacent tokens, so coverage is checked semantically here.)
        """
        from repro.patterns.matching import matches

        leaves = _leaf_layer(["John Smith", "Christopher Anderson", "IBM Research"])
        for strategy, level in ((generalize_quantifier, 1), (generalize_alpha, 2)):
            parents = refine_layer(leaves, strategy, level=level)
            for parent in parents:
                for child in parent.children:
                    for value in child.values():
                        assert matches(value, parent.pattern)
            leaves = parents

    def test_coverage_preserves_row_counts(self):
        values = ["John Smith", "Christopher Anderson", "734-422-8073"] * 5
        leaves = _leaf_layer(values)
        parents = refine_layer(leaves, generalize_quantifier, level=1)
        assert sum(parent.size for parent in parents) == len(values)

    def test_empty_layer(self):
        assert refine_layer([], generalize_quantifier, level=1) == []

    def test_levels_are_assigned(self):
        leaves = _leaf_layer(["ab", "cd"])
        parents = refine_layer(leaves, generalize_quantifier, level=3)
        assert all(parent.level == 3 for parent in parents)

    def test_refinement_is_deterministic(self):
        values = ["John Smith", "Christopher Anderson", "734-422-8073", "999.111.2222"]
        first = refine_layer(_leaf_layer(values), generalize_quantifier, level=1)
        second = refine_layer(_leaf_layer(values), generalize_quantifier, level=1)
        assert [p.pattern for p in first] == [p.pattern for p in second]
