"""CLI tests for the parallel/pipelined scale surface of PR 3.

Covers ``profile --workers``, the multi-program pipelined ``apply``
(``--workers``, ``--format jsonl``), and the content-addressed
``compile --cache-dir`` — including the zero-synthesis guarantee on a
cache hit.
"""

from __future__ import annotations

import csv
import json

import pytest

from repro.bench.phone import phone_dataset
from repro.cli import main


@pytest.fixture
def phone_csv(tmp_path):
    raw, _ = phone_dataset(count=200, format_count=6, seed=331)
    path = tmp_path / "phones.csv"
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "phone"])
        for index, value in enumerate(raw):
            writer.writerow([index, value])
    return path


@pytest.fixture
def artifact(phone_csv, tmp_path):
    path = tmp_path / "phone.clx.json"
    code = main(
        [
            "compile",
            str(phone_csv),
            "--column",
            "phone",
            "--target-pattern",
            "<D>3'-'<D>3'-'<D>4",
            "--output",
            str(path),
        ]
    )
    assert code == 0
    return path


@pytest.fixture
def two_column_csv(tmp_path):
    raw, _ = phone_dataset(count=100, format_count=4, seed=91)
    path = tmp_path / "two.csv"
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["home", "work"])
        for index in range(0, 100, 2):
            writer.writerow([raw[index], raw[index + 1]])
    return path


class TestProfileWorkers:
    def test_parallel_profile_prints_the_serial_table(self, phone_csv, capsys):
        assert main(["profile", str(phone_csv), "--column", "phone"]) == 0
        serial = capsys.readouterr().out
        assert main(["profile", str(phone_csv), "--column", "phone", "--workers", "3"]) == 0
        parallel = capsys.readouterr().out
        # Counts and patterns are identical; exemplar choice may differ
        # once a reservoir fills, so compare pattern/count columns.
        def signature(text):
            return [line.split("  ")[0:2] for line in text.splitlines()[2:]]

        assert signature(parallel) == signature(serial)

    def test_workers_must_be_positive(self, phone_csv, capsys):
        code = main(["profile", str(phone_csv), "--column", "phone", "--workers", "0"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err


class TestApplyPipelined:
    def test_parallel_apply_output_equals_serial(self, artifact, phone_csv, tmp_path):
        serial = tmp_path / "serial.csv"
        parallel = tmp_path / "parallel.csv"
        assert main(["apply", str(artifact), str(phone_csv), "--output", str(serial)]) == 0
        assert (
            main(
                [
                    "apply",
                    str(artifact),
                    str(phone_csv),
                    "--output",
                    str(parallel),
                    "--workers",
                    "3",
                    "--chunk-size",
                    "17",
                ]
            )
            == 0
        )
        assert parallel.read_text(encoding="utf-8") == serial.read_text(encoding="utf-8")

    def test_jsonl_sink(self, artifact, phone_csv, tmp_path):
        out = tmp_path / "out.jsonl"
        code = main(
            [
                "apply",
                str(artifact),
                str(phone_csv),
                "--format",
                "jsonl",
                "--output",
                str(out),
                "--workers",
                "2",
            ]
        )
        assert code == 0
        lines = out.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 200
        first = json.loads(lines[0])
        assert set(first) == {"id", "phone", "phone_transformed"}
        assert first["phone_transformed"].count("-") == 2

    def test_jsonl_serial_equals_parallel(self, artifact, phone_csv, tmp_path):
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "parallel.jsonl"
        for path, extra in ((serial, []), (parallel, ["--workers", "2"])):
            code = main(
                [
                    "apply",
                    str(artifact),
                    str(phone_csv),
                    "--format",
                    "jsonl",
                    "--output",
                    str(path),
                ]
                + extra
            )
            assert code == 0
        assert parallel.read_text(encoding="utf-8") == serial.read_text(encoding="utf-8")

    def test_multi_program_multi_column_single_pass(self, artifact, two_column_csv, tmp_path):
        out = tmp_path / "both.csv"
        code = main(
            [
                "apply",
                str(artifact),
                str(artifact),
                str(two_column_csv),
                "--column",
                "home",
                "--column",
                "work",
                "--output",
                str(out),
                "--workers",
                "2",
            ]
        )
        assert code == 0
        rows = list(csv.DictReader(out.open(encoding="utf-8")))
        assert set(rows[0]) == {"home", "work", "home_transformed", "work_transformed"}
        assert all(row["home_transformed"].count("-") == 2 for row in rows)
        assert all(row["work_transformed"].count("-") == 2 for row in rows)

    def test_multi_program_in_place(self, artifact, two_column_csv, tmp_path):
        out = tmp_path / "inplace.csv"
        code = main(
            [
                "apply",
                str(artifact),
                str(artifact),
                str(two_column_csv),
                "--column",
                "home",
                "--column",
                "work",
                "--in-place",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        rows = list(csv.DictReader(out.open(encoding="utf-8")))
        assert set(rows[0]) == {"home", "work"}
        assert all(row["home"].count("-") == 2 for row in rows)

    def test_column_count_mismatch_is_an_error(self, artifact, two_column_csv, capsys):
        code = main(
            [
                "apply",
                str(artifact),
                str(artifact),
                str(two_column_csv),
                "--column",
                "home",
            ]
        )
        assert code == 2
        assert "--column" in capsys.readouterr().err

    def test_duplicate_target_column_is_an_error(self, artifact, two_column_csv, capsys):
        code = main(
            [
                "apply",
                str(artifact),
                str(artifact),
                str(two_column_csv),
                "--column",
                "home",
                "--column",
                "home",
            ]
        )
        assert code == 2
        assert "more than one program" in capsys.readouterr().err

    def test_output_column_ambiguous_with_multiple_programs(
        self, artifact, two_column_csv, capsys
    ):
        code = main(
            [
                "apply",
                str(artifact),
                str(artifact),
                str(two_column_csv),
                "--column",
                "home",
                "--column",
                "work",
                "--output-column",
                "clean",
            ]
        )
        assert code == 2
        assert "ambiguous" in capsys.readouterr().err

    def test_chunk_size_must_be_positive(self, artifact, phone_csv, capsys):
        code = main(["apply", str(artifact), str(phone_csv), "--chunk-size", "0"])
        assert code == 2
        assert "--chunk-size" in capsys.readouterr().err


class TestCompileCache:
    TARGET = ["--target-pattern", "<D>3'-'<D>3'-'<D>4"]

    def test_second_compile_is_zero_synthesis(
        self, phone_csv, tmp_path, capsys, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        first = tmp_path / "first.clx.json"
        second = tmp_path / "second.clx.json"
        base = ["compile", str(phone_csv), "--column", "phone", *self.TARGET]
        assert main(base + ["--output", str(first), "--cache-dir", str(cache_dir)]) == 0
        err = capsys.readouterr().err
        assert "cached artifact" in err
        assert len(list(cache_dir.glob("*.clx.json"))) == 1

        def boom(*args, **kwargs):  # pragma: no cover - must not be hit
            raise AssertionError("cache hit must not synthesize")

        monkeypatch.setattr("repro.synthesis.synthesizer.Synthesizer.synthesize", boom)
        assert main(base + ["--output", str(second), "--cache-dir", str(cache_dir)]) == 0
        err = capsys.readouterr().err
        assert "cache hit" in err
        assert second.read_text(encoding="utf-8") == first.read_text(encoding="utf-8")

    def test_different_target_misses(self, phone_csv, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        base = ["compile", str(phone_csv), "--column", "phone"]
        out = ["--output", str(tmp_path / "a.clx.json"), "--cache-dir", str(cache_dir)]
        assert main(base + self.TARGET + out) == 0
        assert (
            main(
                base
                + ["--target-pattern", "'('<D>3')'' '<D>3'-'<D>4"]
                + ["--output", str(tmp_path / "b.clx.json"), "--cache-dir", str(cache_dir)]
            )
            == 0
        )
        assert len(list(cache_dir.glob("*.clx.json"))) == 2

    def test_different_column_data_misses(self, phone_csv, two_column_csv, tmp_path):
        cache_dir = tmp_path / "cache"
        assert (
            main(
                [
                    "compile",
                    str(phone_csv),
                    "--column",
                    "phone",
                    *self.TARGET,
                    "--output",
                    str(tmp_path / "a.clx.json"),
                    "--cache-dir",
                    str(cache_dir),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "compile",
                    str(two_column_csv),
                    "--column",
                    "home",
                    *self.TARGET,
                    "--output",
                    str(tmp_path / "b.clx.json"),
                    "--cache-dir",
                    str(cache_dir),
                ]
            )
            == 0
        )
        assert len(list(cache_dir.glob("*.clx.json"))) == 2

    def test_identical_distribution_different_column_misses(self, tmp_path, capsys):
        # Two columns with byte-identical value distributions must not
        # share a cache entry: the artifact's metadata records the
        # source column, and a later `apply` resolves the column from
        # it — a cross-column hit would silently transform the wrong
        # column.
        raw, _ = phone_dataset(count=120, format_count=4, seed=55)
        source = tmp_path / "twin.csv"
        with source.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["phone", "fax"])
            for value in raw:
                writer.writerow([value, value])
        cache_dir = tmp_path / "cache"
        fax_artifact = tmp_path / "fax.clx.json"
        for column, output in (("phone", tmp_path / "phone.clx.json"), ("fax", fax_artifact)):
            code = main(
                [
                    "compile",
                    str(source),
                    "--column",
                    column,
                    *self.TARGET,
                    "--output",
                    str(output),
                    "--cache-dir",
                    str(cache_dir),
                ]
            )
            assert code == 0
        assert "cache hit" not in capsys.readouterr().err
        assert len(list(cache_dir.glob("*.clx.json"))) == 2
        assert json.loads(fax_artifact.read_text(encoding="utf-8"))["metadata"]["column"] == "fax"

    def test_missing_target_still_a_usage_error(self, phone_csv, tmp_path, capsys):
        code = main(
            [
                "compile",
                str(phone_csv),
                "--column",
                "phone",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 2
        assert "--target-pattern or --target-example" in capsys.readouterr().err
