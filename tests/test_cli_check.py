"""Golden-file CLI tests for ``repro-clx check`` and its integrations.

The fixture artifacts are hand-built to trip one rule each (dead arm,
overlap, ReDoS shape, coverage residual, column conflict), and the text
and JSON reports are pinned verbatim — the reporter's exact output is
part of the CLI contract.  Probing is disabled (``--no-probe``) in the
golden runs so no timing-dependent CLX006 line can flake them; the probe
escalation has its own non-golden test.
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.cli import main
from repro.dsl.ast import AtomicPlan, Branch, ConstStr, Extract, UniFiProgram
from repro.engine.compiled import CompiledProgram
from repro.patterns.parse import parse_pattern as P

TARGET = P("<D>3'-'<D>4")

DOT_BRANCH = Branch(
    P("<D>3'.'<D>4"), AtomicPlan([Extract(1), ConstStr("-"), Extract(3)])
)


def _write(path, branches, target=TARGET, metadata=None):
    compiled = CompiledProgram(UniFiProgram(branches), target, metadata=metadata)
    path.write_text(compiled.dumps(indent=2) + "\n", encoding="utf-8")
    return path


@pytest.fixture
def workdir(tmp_path, monkeypatch):
    """Run the CLI from tmp_path so finding locations are bare names."""
    monkeypatch.chdir(tmp_path)
    return tmp_path


@pytest.fixture
def clean_artifact(workdir):
    return _write(workdir / "clean.clx.json", [DOT_BRANCH], metadata={"column": "phone"})


@pytest.fixture
def dirty_artifact(workdir):
    """One dead arm (vs target), one overlapping constant branch."""
    return _write(
        workdir / "dirty.clx.json",
        [
            DOT_BRANCH,
            Branch(P("<D>3'-'<D>4"), AtomicPlan([Extract(1, 3)])),
            Branch(P("<D>+'.'<D>4"), AtomicPlan([ConstStr("000-0000")])),
        ],
        metadata={"column": "phone"},
    )


@pytest.fixture
def redos_artifact(workdir):
    """Eight adjacent overlapping '+' tokens: C(n-1,7) backtracking."""
    return _write(
        workdir / "redos.clx.json",
        [Branch(P("<A>+" * 8), AtomicPlan([Extract(1, 8)]))],
        target=P("<D>3"),
        metadata={"column": "code"},
    )


@pytest.fixture
def phones_csv(workdir):
    (workdir / "phones.csv").write_text(
        "id,phone\n1,555-1234\n2,555.1234\n3,(555) 1234\n",
        encoding="utf-8",
    )
    return workdir / "phones.csv"


GOLDEN_DIRTY_TEXT = """\
ERROR CLX001 dirty.clx.json:branch[2]: branch pattern <D>3'-'<D>4 is subsumed by the target <D>3'-'<D>4; every match passes through before this branch is consulted
INFO  CLX007 dirty.clx.json:branch[2]: plan rewrites every match of <D>3'-'<D>4 to itself; the branch only flips the matched flag
WARN  CLX003 dirty.clx.json:branch[3]: pattern <D>+'.'<D>4 overlaps branch 1 (<D>3'.'<D>4) with a different plan; output depends on branch order
WARN  CLX008 dirty.clx.json:branch[3]: plan maps every match of <D>+'.'<D>4 to the constant '000-0000' (the constant already matches the target)
4 finding(s): 1 error, 2 warn, 1 info
"""

GOLDEN_DIRTY_JSON = {
    "format": "clx/analysis-report",
    "version": 1,
    "summary": {"error": 1, "warn": 2, "info": 1},
    "findings": [
        {
            "rule": "CLX001",
            "severity": "error",
            "location": "dirty.clx.json:branch[2]",
            "message": "branch pattern <D>3'-'<D>4 is subsumed by the target "
            "<D>3'-'<D>4; every match passes through before this branch is "
            "consulted",
            "data": {"pattern": "<D>3'-'<D>4", "target": "<D>3'-'<D>4"},
        },
        {
            "rule": "CLX007",
            "severity": "info",
            "location": "dirty.clx.json:branch[2]",
            "message": "plan rewrites every match of <D>3'-'<D>4 to itself; "
            "the branch only flips the matched flag",
            "data": {"pattern": "<D>3'-'<D>4"},
        },
        {
            "rule": "CLX003",
            "severity": "warn",
            "location": "dirty.clx.json:branch[3]",
            "message": "pattern <D>+'.'<D>4 overlaps branch 1 (<D>3'.'<D>4) "
            "with a different plan; output depends on branch order",
            "data": {"pattern": "<D>+'.'<D>4", "overlaps_branch": 1},
        },
        {
            "rule": "CLX008",
            "severity": "warn",
            "location": "dirty.clx.json:branch[3]",
            "message": "plan maps every match of <D>+'.'<D>4 to the constant "
            "'000-0000' (the constant already matches the target)",
            "data": {"constant": "000-0000", "matches_target": True},
        },
    ],
}

GOLDEN_REDOS_TEXT = """\
WARN  CLX005 redos.clx.json:branch[1]: ambiguous repetition: adjacent unbounded repetitions over overlapping character sets
INFO  CLX007 redos.clx.json:branch[1]: plan rewrites every match of <A>+<A>+<A>+<A>+<A>+<A>+<A>+<A>+ to itself; the branch only flips the matched flag
2 finding(s): 1 warn, 1 info
"""

GOLDEN_COVERAGE_TEXT = """\
WARN  CLX012 clean.clx.json: profiled cluster '('<D>3')'' '<D>4 (1 row(s)) matches no branch; those rows pass through unchanged
1 finding(s): 1 warn
"""


class TestGoldenReports:
    def test_dirty_artifact_text_report(self, dirty_artifact, capsys):
        code = main(["check", "dirty.clx.json", "--no-probe"])
        assert capsys.readouterr().out == GOLDEN_DIRTY_TEXT
        assert code == 1  # CLX001 is an error; default --fail-on error

    def test_dirty_artifact_json_report(self, dirty_artifact, capsys):
        code = main(["check", "dirty.clx.json", "--no-probe", "--json"])
        assert json.loads(capsys.readouterr().out) == GOLDEN_DIRTY_JSON
        assert code == 1

    def test_redos_artifact_text_report(self, redos_artifact, capsys):
        code = main(["check", "redos.clx.json", "--no-probe"])
        assert capsys.readouterr().out == GOLDEN_REDOS_TEXT
        assert code == 0  # structural ambiguity alone is a warning

    def test_coverage_residual_text_report(self, clean_artifact, phones_csv, capsys):
        code = main(
            ["check", "clean.clx.json", "--profile", "phones.csv", "--column", "phone"]
        )
        assert capsys.readouterr().out == GOLDEN_COVERAGE_TEXT
        assert code == 0

    def test_conflict_across_artifacts(self, clean_artifact, workdir, capsys):
        _write(workdir / "again.clx.json", [DOT_BRANCH], metadata={"column": "phone"})
        code = main(["check", "again.clx.json", "clean.clx.json"])
        out = capsys.readouterr().out
        assert code == 1
        assert "CLX013" in out
        assert "column 'phone' is targeted by 2 artifacts" in out

    def test_clean_artifact_reports_ok(self, clean_artifact, capsys):
        code = main(["check", "clean.clx.json"])
        assert capsys.readouterr().out == "OK: no findings\n"
        assert code == 0


class TestProbeEscalation:
    def test_redos_artifact_probe_confirms_clx006(self, redos_artifact, capsys):
        code = main(["check", "redos.clx.json", "--fail-on", "error"])
        out = capsys.readouterr().out
        assert code == 1
        assert "CLX006" in out and "adversarial input" in out


class TestFailOnContract:
    def test_warnings_pass_under_fail_on_error(self, redos_artifact):
        assert main(["check", "redos.clx.json", "--no-probe"]) == 0

    def test_warnings_fail_under_fail_on_warn(self, redos_artifact):
        assert main(["check", "redos.clx.json", "--no-probe", "--fail-on", "warn"]) == 1

    def test_info_fails_only_under_fail_on_info(self, redos_artifact, workdir):
        _write(
            workdir / "identity.clx.json",
            [Branch(P("<D>+'/'<D>+"), AtomicPlan([Extract(1, 3)]))],
        )
        assert main(["check", "identity.clx.json", "--fail-on", "warn"]) == 0
        assert main(["check", "identity.clx.json", "--fail-on", "info"]) == 1

    def test_warning_alias_is_accepted(self, redos_artifact):
        code = main(["check", "redos.clx.json", "--no-probe", "--fail-on", "warning"])
        assert code == 1

    def test_unknown_severity_is_a_usage_error(self, clean_artifact, capsys):
        code = main(["check", "clean.clx.json", "--fail-on", "banana"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown severity 'banana'" in err
        assert "Traceback" not in err

    def test_profile_requires_column(self, clean_artifact, phones_csv, capsys):
        code = main(["check", "clean.clx.json", "--profile", "phones.csv"])
        assert code == 2
        assert "--column" in capsys.readouterr().err

    def test_missing_artifact_is_a_clean_error(self, workdir, capsys):
        code = main(["check", "nope.clx.json"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class _BrokenStdout:
    def write(self, text):
        raise BrokenPipeError(32, "Broken pipe")

    def flush(self):
        pass


class TestBrokenPipe:
    def test_check_exits_with_sigpipe_code(self, dirty_artifact, monkeypatch):
        monkeypatch.setattr(sys, "stdout", _BrokenStdout())
        assert main(["check", "dirty.clx.json", "--no-probe", "--json"]) == 141

    def test_artifacts_list_json_exits_with_sigpipe_code(
        self, workdir, phones_csv, monkeypatch
    ):
        assert (
            main(
                [
                    "compile", "phones.csv", "--column", "phone",
                    "--target-pattern", "<D>3'-'<D>4",
                    "--output", "phone.clx.json", "--cache-dir", "cache",
                ]
            )
            == 0
        )
        monkeypatch.setattr(sys, "stdout", _BrokenStdout())
        assert main(["artifacts", "list", "--cache-dir", "cache", "--json"]) == 141


class TestCompileIntegration:
    def test_compile_prints_warnings_and_records_lint_status(self, workdir, capsys):
        # The free-text cluster has no plan to the target -> a CLX012
        # coverage residual at compile time.
        (workdir / "messy.csv").write_text(
            "id,phone\n1,555.1234\n2,313.9999\n3,not a phone\n", encoding="utf-8"
        )
        code = main(
            [
                "compile", "messy.csv", "--column", "phone",
                "--target-pattern", "<D>3'-'<D>4",
                "--output", "phone.clx.json", "--cache-dir", "cache",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "analysis findings:" in captured.err
        assert "CLX012" in captured.err
        assert (workdir / "phone.clx.json").exists()

        assert main(["artifacts", "list", "--cache-dir", "cache"]) == 0
        out = capsys.readouterr().out
        assert "lint" in out.splitlines()[0]
        assert "1W" in out

    def test_strict_compile_refuses_warnings(self, workdir, capsys):
        (workdir / "messy.csv").write_text(
            "id,phone\n1,555.1234\n2,not a phone\n", encoding="utf-8"
        )
        code = main(
            [
                "compile", "messy.csv", "--column", "phone",
                "--target-pattern", "<D>3'-'<D>4",
                "--strict", "--output", "strict.clx.json",
            ]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "--strict compile refused" in err
        assert not (workdir / "strict.clx.json").exists()

    def test_strict_compile_passes_when_clean(self, workdir, capsys):
        (workdir / "dots.csv").write_text(
            "id,phone\n1,555.1234\n2,313.9999\n", encoding="utf-8"
        )
        code = main(
            [
                "compile", "dots.csv", "--column", "phone",
                "--target-pattern", "<D>3'-'<D>4",
                "--strict", "--output", "dots.clx.json",
            ]
        )
        assert code == 0
        assert (workdir / "dots.clx.json").exists()


class TestApplyPreflight:
    def test_conflicting_artifacts_abort_before_streaming(
        self, clean_artifact, workdir, phones_csv, capsys
    ):
        _write(workdir / "again.clx.json", [DOT_BRANCH], metadata={"column": "phone"})
        code = main(["apply", "clean.clx.json", "again.clx.json", "phones.csv"])
        err = capsys.readouterr().err
        assert code == 2
        assert "targeted by 2 artifacts" in err
        assert "repro-clx check" in err

    def test_dead_arm_warns_but_apply_proceeds(
        self, dirty_artifact, workdir, phones_csv, capsys
    ):
        code = main(
            ["apply", "dirty.clx.json", "phones.csv", "--output", "out.csv"]
        )
        captured = capsys.readouterr()
        assert code in (0, 1)
        assert "warning: ERROR CLX001" in captured.err
        assert (workdir / "out.csv").exists()
