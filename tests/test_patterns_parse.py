"""Tests for the pattern-notation parser."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.patterns.matching import pattern_of_string
from repro.patterns.parse import parse_pattern
from repro.tokens.classes import TokenClass
from repro.tokens.token import PLUS
from repro.util.errors import PatternParseError


class TestParsing:
    def test_single_base_token(self):
        pattern = parse_pattern("<D>3")
        assert len(pattern) == 1
        assert pattern[0].klass is TokenClass.DIGIT
        assert pattern[0].quantifier == 3

    def test_default_quantifier_is_one(self):
        pattern = parse_pattern("<U>")
        assert pattern[0].quantifier == 1

    def test_plus_quantifier(self):
        assert parse_pattern("<L>+")[0].quantifier == PLUS

    def test_literal(self):
        pattern = parse_pattern("'-'")
        assert pattern[0].is_literal
        assert pattern[0].literal == "-"

    def test_multi_character_literal(self):
        assert parse_pattern("'Dr.'")[0].literal == "Dr."

    def test_escaped_quote_in_literal(self):
        assert parse_pattern(r"'\''")[0].literal == "'"

    def test_whitespace_between_elements_ignored(self):
        assert parse_pattern("<D>3 '-' <D>4") == parse_pattern("<D>3'-'<D>4")

    def test_alternative_digit_notation(self):
        # The paper sometimes writes <N> for digits.
        assert parse_pattern("<N>2")[0].klass is TokenClass.DIGIT

    def test_phone_pattern(self):
        pattern = parse_pattern("'('<D>3')'' '<D>3'-'<D>4")
        assert [t.notation() for t in pattern] == [
            "'('", "<D>3", "')'", "' '", "<D>3", "'-'", "<D>4",
        ]

    def test_empty_string_parses_to_empty_pattern(self):
        assert len(parse_pattern("")) == 0


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        ["<D", "<X>3", "abc", "''", "'unterminated", "<D>0"],
    )
    def test_bad_notation_raises(self, bad):
        with pytest.raises(PatternParseError):
            parse_pattern(bad)

    def test_error_carries_source(self):
        try:
            parse_pattern("<Q>1")
        except PatternParseError as exc:
            assert exc.source == "<Q>1"
        else:  # pragma: no cover
            pytest.fail("expected PatternParseError")


ascii_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=1, max_size=30
)


class TestRoundtrip:
    @given(ascii_text)
    def test_notation_of_string_pattern_reparses(self, value):
        """pattern_of_string -> notation -> parse_pattern is the identity."""
        pattern = pattern_of_string(value)
        assert parse_pattern(pattern.notation()) == pattern
