"""Tests for the three generalization strategies (Section 4.2)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.patterns.generalize import (
    GENERALIZATION_STRATEGIES,
    generalize_alnum,
    generalize_alpha,
    generalize_quantifier,
)
from repro.patterns.matching import matches, pattern_of_string
from repro.patterns.parse import parse_pattern


class TestStrategy1Quantifier:
    def test_numeric_quantifiers_become_plus(self):
        pattern = parse_pattern("<U><L>2<D>3")
        assert generalize_quantifier(pattern).notation() == "<U>+<L>+<D>+"

    def test_literals_unchanged(self):
        pattern = parse_pattern("<D>3'-'<D>4")
        assert generalize_quantifier(pattern).notation() == "<D>+'-'<D>+"

    def test_adjacent_same_class_tokens_merge(self):
        # <D>3<D>2 cannot arise from tokenization but can from promotion
        # round-trips; both collapse to a single <D>+.
        pattern = parse_pattern("<D>3<D>2")
        assert generalize_quantifier(pattern).notation() == "<D>+"

    def test_idempotent(self):
        pattern = parse_pattern("<D>+'-'<L>+")
        assert generalize_quantifier(pattern) == pattern


class TestStrategy2Alpha:
    def test_lower_and_upper_become_alpha(self):
        pattern = parse_pattern("<U>+<L>+<D>+")
        assert generalize_alpha(pattern).notation() == "<A>+<D>+"

    def test_adjacent_alpha_merges(self):
        pattern = parse_pattern("<U><L>2")
        assert generalize_alpha(pattern).notation() == "<A>3"

    def test_digits_and_literals_untouched(self):
        pattern = parse_pattern("<D>3'-'<D>4")
        assert generalize_alpha(pattern) == pattern


class TestStrategy3Alnum:
    def test_alpha_and_digit_become_alnum(self):
        pattern = parse_pattern("<A>+<D>+'@'<A>+")
        assert generalize_alnum(pattern).notation() == "<AN>+'@'<AN>+"

    def test_dash_and_underscore_literals_fold_in(self):
        pattern = parse_pattern("<A>+'-'<D>+")
        assert generalize_alnum(pattern).notation() == "<AN>+"

    def test_other_literals_survive(self):
        pattern = parse_pattern("<A>+'.'<A>+")
        assert generalize_alnum(pattern).notation() == "<AN>+'.'<AN>+"


class TestHierarchyExample:
    def test_paper_figure_6_chain(self):
        """Leaf of Example 3 generalizes to the P1/P2/P3 of Figure 6."""
        leaf = pattern_of_string("Bob123@gmail.com")
        level1 = generalize_quantifier(leaf)
        assert level1.notation() == "<U>+<L>+<D>+'@'<L>+'.'<L>+"
        level2 = generalize_alpha(level1)
        assert level2.notation() == "<A>+<D>+'@'<A>+'.'<A>+"
        level3 = generalize_alnum(level2)
        assert level3.notation() == "<AN>+'@'<AN>+'.'<AN>+"

    def test_three_strategies_exported_in_order(self):
        assert GENERALIZATION_STRATEGIES == (
            generalize_quantifier,
            generalize_alpha,
            generalize_alnum,
        )


ascii_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=1, max_size=30
)


class TestGeneralizationProperties:
    @given(ascii_text)
    def test_generalized_pattern_still_matches_the_string(self, value):
        """Every refinement round produces a pattern that covers the data."""
        pattern = pattern_of_string(value)
        for strategy in GENERALIZATION_STRATEGIES:
            pattern = strategy(pattern)
            assert matches(value, pattern)

    @given(ascii_text)
    def test_each_strategy_is_idempotent(self, value):
        pattern = pattern_of_string(value)
        for strategy in GENERALIZATION_STRATEGIES:
            pattern = strategy(pattern)
            assert strategy(pattern) == pattern
