"""Property-based equivalence: partitioned apply == single-stream apply.

The apply half's core promise mirrors the profile half's: *how a
column is split across files never changes the applied output*.  For
any partition count, any split points, any mix of CSV and JSONL parts,
any worker count, any shard geometry, and either sink format, applying
a compiled program to the dataset must produce bytes identical to
transforming the concatenated column through one serial stream and
encoding it directly with the stdlib codecs — the differential oracle
for the mixed-format apply path.

Randomization flows through the shared ``property_rng`` fixture: the
seed is fixed by default and printed for every test, so a failing draw
replays with ``CLX_PROPERTY_SEED=<seed> pytest <test>``.
"""

from __future__ import annotations

import csv
import io
import json

from repro.bench.generators import phone_numbers
from repro.core.session import CLXSession
from repro.dataset import Dataset
from repro.engine.parallel import ShardedTableExecutor, apply_dataset

#: Randomized rounds per property; each round redraws the column, the
#: split points, the per-part formats, and the knobs.
ROUNDS = 5

#: Worker counts every equivalence draw is checked at.
WORKER_COUNTS = (1, 2, 3)

TARGET = "<D>3'-'<D>3'-'<D>4"
FORMATS = ["paren_space", "dashes", "dots", "paren_tight"]


def _engine():
    raw, _ = phone_numbers(200, FORMATS, seed=1729)
    session = CLXSession(raw)
    session.label_target_from_notation(TARGET)
    return session.engine()


ENGINE = _engine()


def _random_column(rng):
    return phone_numbers(rng.randint(20, 160), FORMATS, seed=rng.randrange(1_000_000))[0]


def _random_split(rng, column):
    """Split ``column`` into 1..6 contiguous, possibly empty runs."""
    part_count = rng.randint(1, 6)
    cuts = sorted(rng.randint(0, len(column)) for _ in range(part_count - 1))
    bounds = [0] + cuts + [len(column)]
    return [column[start:end] for start, end in zip(bounds, bounds[1:])]

def _write_parts(directory, rng, chunks):
    """Write each chunk as a CSV or JSONL partition, globally numbered rows."""
    base = 0
    for index, chunk in enumerate(chunks):
        if rng.random() < 0.5:
            path = directory / f"part-{index:03d}.jsonl"
            with path.open("w", encoding="utf-8") as handle:
                for offset, value in enumerate(chunk):
                    handle.write(
                        json.dumps({"id": str(base + offset), "phone": value}) + "\n"
                    )
        else:
            path = directory / f"part-{index:03d}.csv"
            with path.open("w", newline="", encoding="utf-8") as handle:
                writer = csv.writer(handle)
                writer.writerow(["id", "phone"])
                for offset, value in enumerate(chunk):
                    writer.writerow([base + offset, value])
        base += len(chunk)
    return Dataset.resolve(str(directory / "part-*"))


def _reference(column, out_format):
    """Single-stream oracle built straight on the stdlib codecs."""
    outputs = [ENGINE.run_one(value).output for value in column]
    if out_format == "jsonl":
        return "".join(
            json.dumps(
                {"id": str(index), "phone": value, "phone_transformed": output},
                ensure_ascii=False,
            )
            + "\n"
            for index, (value, output) in enumerate(zip(column, outputs))
        )
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["id", "phone", "phone_transformed"])
    for index, (value, output) in enumerate(zip(column, outputs)):
        writer.writerow([index, value, output])
    return buffer.getvalue()


class TestMixedFormatApplyEquivalence:
    def test_any_split_any_workers_any_sink_matches_single_stream(
        self, property_rng, tmp_path
    ):
        rng = property_rng
        for round_index in range(ROUNDS):
            column = _random_column(rng)
            chunks = _random_split(rng, column)
            scratch = tmp_path / f"round-{round_index}"
            scratch.mkdir()
            dataset = _write_parts(scratch, rng, chunks)
            out_format = rng.choice(["csv", "jsonl"])
            expected = _reference(column, out_format)
            shard_bytes = rng.choice([64, 509, 1 << 20])
            for workers in WORKER_COUNTS:
                with ShardedTableExecutor(
                    {"phone": ENGINE},
                    ["id", "phone"],
                    out_format=out_format,
                    workers=workers,
                    chunk_size=rng.randint(1, 64),
                ) as executor:
                    encoded = executor.header_text() + "".join(
                        chunk
                        for _, (chunk, _, _, _) in executor.run_dataset(
                            dataset, shard_bytes=shard_bytes
                        )
                    )
                context = (
                    f"seed={rng.seed_value} round={round_index} workers={workers} "
                    f"sink={out_format} shard_bytes={shard_bytes} "
                    f"parts={[len(chunk) for chunk in chunks]}"
                )
                assert encoded == expected, context

    def test_output_dir_partitions_reassemble_to_the_single_stream(
        self, property_rng, tmp_path
    ):
        rng = property_rng
        for round_index in range(ROUNDS):
            column = _random_column(rng)
            chunks = _random_split(rng, column)
            scratch = tmp_path / f"round-{round_index}"
            scratch.mkdir()
            dataset = _write_parts(scratch, rng, chunks)
            out_format = rng.choice(["csv", "jsonl"])
            expected = _reference(column, out_format)
            workers = rng.choice(WORKER_COUNTS)
            outdir = scratch / "cleaned"
            with ShardedTableExecutor(
                {"phone": ENGINE},
                ["id", "phone"],
                out_format=out_format,
                workers=workers,
            ) as executor:
                result = apply_dataset(
                    executor,
                    dataset,
                    output_dir=outdir,
                    shard_bytes=rng.choice([128, 1 << 20]),
                )
            context = f"seed={rng.seed_value} round={round_index} workers={workers}"
            assert result.rows == len(column), context
            assert len(result.outputs) == len(dataset.parts), context
            header = "" if out_format == "jsonl" else "id,phone,phone_transformed\n"
            reassembled = header + "".join(
                path.read_text(encoding="utf-8")[len(header):]
                for path in result.outputs
            )
            assert reassembled == expected, context

    def test_spliced_file_sink_equals_stream_sink(self, property_rng, tmp_path):
        rng = property_rng
        column = _random_column(rng)
        scratch = tmp_path / "parts"
        scratch.mkdir()
        dataset = _write_parts(scratch, rng, _random_split(rng, column))
        destination = tmp_path / "out.csv"
        result = ENGINE.apply_dataset(
            dataset, "phone", output=destination, workers=rng.choice(WORKER_COUNTS)
        )
        assert result.outputs == [destination]
        assert destination.read_text(encoding="utf-8") == _reference(column, "csv"), (
            f"seed={rng.seed_value}"
        )
