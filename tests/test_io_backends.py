"""Tests for the IO backend registry seam.

Covers the loud-failure suffix dispatch (no more silent CSV fallback),
the pyarrow availability gate on columnar backends, non-UTF-8 handling
(abort names the byte; quarantine diverts the record), the remote
opener seam, backend-identity resume keys, and the artifact registry's
size-budget LRU eviction.
"""

from __future__ import annotations

import importlib.util
import io
import json

import pytest

from repro.bench.phone import phone_dataset
from repro.cli import main
from repro.core.session import CLXSession
from repro.dataset import Dataset
from repro.dataset.backends import (
    PartOpener,
    backend_by_name,
    backend_names,
    pyarrow_available,
    register_opener,
    sink_format_names,
    supported_suffixes,
    unregister_opener,
)
from repro.engine.cache import ArtifactRegistry, RegistryEntry
from repro.engine.parallel import ShardedTableExecutor, apply_dataset
from repro.engine.resilience import RunManifest
from repro.util.errors import CLXError

_FSSPEC_PRESENT = importlib.util.find_spec("fsspec") is not None

CSV_BYTES = b"id,phone\n0,906.555.1234\n1,(906) 555-9999\n2,906 555 0000\n"


@pytest.fixture(scope="module")
def phone_engine():
    raw, _ = phone_dataset(count=120, format_count=4, seed=13)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    return session.engine()


def _apply_to_file(engine, dataset, target, workers=1, shard_bytes=1 << 20, **kwargs):
    with ShardedTableExecutor(
        {"phone": engine}, ["id", "phone"], workers=workers, **kwargs
    ) as executor:
        return apply_dataset(
            executor,
            dataset,
            output=target,
            shard_bytes=shard_bytes,
            quarantine_dir=kwargs.get("on_error") == "quarantine"
            and target.parent / "quarantine"
            or None,
        )


class TestSuffixDispatch:
    def test_unknown_suffix_fails_loudly(self, tmp_path):
        rogue = tmp_path / "part-0.txt"
        rogue.write_bytes(CSV_BYTES)
        with pytest.raises(CLXError) as excinfo:
            Dataset.resolve(str(rogue))
        message = str(excinfo.value)
        assert "part-0.txt" in message
        assert "'.txt'" in message
        assert ".csv" in message and ".jsonl" in message

    def test_extensionless_file_requires_assume_csv(self, tmp_path):
        bare = tmp_path / "part-0"
        bare.write_bytes(CSV_BYTES)
        with pytest.raises(CLXError, match="--assume-csv"):
            Dataset.resolve(str(bare))
        dataset = Dataset.resolve(str(bare), assume_csv=True)
        assert dataset.parts[0].format == "csv"
        assert list(dataset.iter_values("phone"))[0] == "906.555.1234"

    def test_assume_csv_does_not_override_known_suffixes(self, tmp_path):
        rows = tmp_path / "part-0.jsonl"
        rows.write_text('{"id": 0, "phone": "906.555.1234"}\n', encoding="utf-8")
        dataset = Dataset.resolve(str(rows), assume_csv=True)
        assert dataset.parts[0].format == "jsonl"

    def test_unknown_format_name_fails(self):
        with pytest.raises(CLXError, match="unsupported partition format 'xml'"):
            backend_by_name("xml")

    def test_registry_surfaces(self):
        assert {"csv", "jsonl", "parquet", "arrow"} <= set(backend_names())
        assert {"csv", "jsonl", "parquet", "arrow"} <= set(sink_format_names())
        assert {".csv", ".jsonl", ".ndjson", ".parquet", ".arrow"} <= set(
            supported_suffixes()
        )

    def test_cli_exposes_assume_csv(self, tmp_path, capsys):
        bare = tmp_path / "part-0"
        bare.write_bytes(CSV_BYTES)
        assert main(["profile", str(bare), "--column", "phone"]) == 2
        assert "--assume-csv" in capsys.readouterr().err
        assert (
            main(["profile", str(bare), "--column", "phone", "--assume-csv"]) == 0
        )
        assert "906" in capsys.readouterr().out


@pytest.mark.skipif(
    pyarrow_available(), reason="gate behavior only observable without pyarrow"
)
class TestColumnarGate:
    def test_parquet_part_without_pyarrow_names_the_extra(self, tmp_path):
        part = tmp_path / "part-0.parquet"
        part.write_bytes(b"PAR1 not really parquet")
        dataset = Dataset.resolve(str(part))
        assert dataset.parts[0].format == "parquet"
        with pytest.raises(CLXError, match=r"pyarrow.*repro-clx\[arrow\]"):
            dataset.header()

    def test_parquet_sink_without_pyarrow_fails_at_construction(self, phone_engine):
        with pytest.raises(CLXError, match="pyarrow"):
            ShardedTableExecutor(
                {"phone": phone_engine}, ["id", "phone"], out_format="parquet"
            ).close()

    def test_cli_format_parquet_reports_the_gate(self, tmp_path, capsys):
        artifact = tmp_path / "noop.clx.json"
        data = tmp_path / "rows.csv"
        data.write_bytes(CSV_BYTES)
        # Build a real artifact through the public compile path.
        assert (
            main(
                [
                    "compile",
                    str(data),
                    "--column",
                    "phone",
                    "--target-pattern",
                    "<D>3'-'<D>3'-'<D>4",
                    "--output",
                    str(artifact),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "apply",
                str(artifact),
                str(data),
                "--format",
                "parquet",
                "--output",
                str(tmp_path / "out.parquet"),
            ]
        )
        assert code == 2
        assert "pyarrow" in capsys.readouterr().err


class TestNonUtf8Bytes:
    def test_abort_names_file_line_and_byte_offset(self, phone_engine, tmp_path):
        part = tmp_path / "part-0.csv"
        part.write_bytes(b"id,phone\n0,\xff06.555.1234\n")
        dataset = Dataset.resolve(str(part))
        with pytest.raises(
            CLXError,
            match=r"part-0\.csv line 2: invalid UTF-8 byte 0xff at byte offset 11",
        ):
            _apply_to_file(phone_engine, dataset, tmp_path / "out.csv")

    def test_quarantine_diverts_exactly_the_bad_record(self, phone_engine, tmp_path):
        part = tmp_path / "part-0.csv"
        part.write_bytes(
            b"id,phone\n0,906.555.1234\n1,\xff06.555.9999\n2,906.555.0000\n"
        )
        dataset = Dataset.resolve(str(part))
        target = tmp_path / "out.csv"
        result = _apply_to_file(
            phone_engine, dataset, target, on_error="quarantine"
        )
        assert result.quarantined == 1
        assert result.rows == 2
        text = target.read_text(encoding="utf-8")
        assert "906-555-1234" in text and "906-555-0000" in text
        (quarantine_file,) = result.quarantine_files
        record = json.loads(quarantine_file.read_text(encoding="utf-8"))
        assert "invalid UTF-8 byte 0xff" in record["error"]
        assert record["line"] == 3


class TestRemoteOpeners:
    @pytest.fixture
    def mem_store(self):
        store = {}
        register_opener(
            "mem",
            PartOpener(
                open=lambda url: io.BytesIO(store[url]),
                size=lambda url: len(store[url]),
            ),
        )
        yield store
        unregister_opener("mem")

    def test_mem_scheme_matches_local_bytes(self, phone_engine, tmp_path, mem_store):
        local = tmp_path / "part-0.csv"
        local.write_bytes(CSV_BYTES)
        mem_store["mem://bucket/part-0.csv"] = CSV_BYTES

        local_out = tmp_path / "local.csv"
        remote_out = tmp_path / "remote.csv"
        _apply_to_file(
            phone_engine, Dataset.resolve(str(local)), local_out,
            workers=2, shard_bytes=16,
        )
        _apply_to_file(
            phone_engine,
            Dataset.resolve("mem://bucket/part-0.csv"),
            remote_out,
            workers=2,
            shard_bytes=16,
        )
        assert remote_out.read_bytes() == local_out.read_bytes()

    def test_remote_parts_profile_like_local(self, tmp_path, mem_store):
        mem_store["mem://bucket/part-0.csv"] = CSV_BYTES
        dataset = Dataset.resolve("mem://bucket/part-0.csv")
        assert dataset.parts[0].size == len(CSV_BYTES)
        assert list(dataset.iter_values("phone")) == [
            "906.555.1234",
            "(906) 555-9999",
            "906 555 0000",
        ]

    def test_file_url_resolves_to_the_local_path(self, tmp_path):
        local = tmp_path / "part-0.csv"
        local.write_bytes(CSV_BYTES)
        via_url = Dataset.resolve(local.as_uri())
        via_path = Dataset.resolve(str(local))
        assert [part.locator for part in via_url] == [
            part.locator for part in via_path
        ]
        assert via_url.parts[0].url is None  # file:// is the local fast path

    @pytest.mark.skipif(
        _FSSPEC_PRESENT, reason="fsspec would serve the scheme for real"
    )
    def test_unregistered_scheme_names_the_remote_extra(self):
        with pytest.raises(CLXError, match=r"fsspec.*repro-clx\[remote\]"):
            Dataset.resolve("s3://bucket/part-0.csv")


class TestRunManifestBackendIdentity:
    def test_entry_written_under_another_backend_is_distrusted(self, tmp_path):
        (tmp_path / "part-0.csv").write_text("done", encoding="utf-8")
        manifest = RunManifest(tmp_path, out_format="csv")
        manifest.mark(
            "part-0.csv", "src/part-0", 64, rows=3, flagged=0, quarantined=0,
            backend="csv",
        )
        resumed = RunManifest(tmp_path, out_format="csv", resume=True)
        assert resumed.completed("part-0.csv", "src/part-0", 64, backend="csv")
        assert resumed.completed("part-0.csv", "src/part-0", 64, backend="jsonl") is None


def _seed_registry(tmp_path, sizes):
    """A registry with one artifact per (key, size, last_used) triple."""
    registry = ArtifactRegistry(tmp_path)
    for key, (size, last_used) in sizes.items():
        name = f"{key}.clx.json"
        (tmp_path / name).write_bytes(b"x" * size)
        registry.record(
            RegistryEntry(
                key=key,
                fingerprint="fp",
                target="t",
                created_at=1_000.0,
                last_used_at=last_used,
                artifact=name,
            )
        )
    return registry


class TestGcMaxBytes:
    def test_evicts_least_recently_used_until_under_budget(self, tmp_path):
        registry = _seed_registry(
            tmp_path, {"aa": (100, 2_000.0), "bb": (100, 3_000.0), "cc": (100, 4_000.0)}
        )
        report = registry.gc(max_bytes=250)
        assert report["removed_entries"] == ["aa"]
        assert report["removed_files"] == ["aa.clx.json"]
        assert not (tmp_path / "aa.clx.json").exists()
        assert (tmp_path / "bb.clx.json").exists()
        assert {entry.key for entry in registry.entries()} == {"bb", "cc"}

    def test_zero_budget_evicts_everything(self, tmp_path):
        registry = _seed_registry(tmp_path, {"aa": (10, 2_000.0), "bb": (10, 0.0)})
        report = registry.gc(max_bytes=0)
        assert report["removed_entries"] == ["aa", "bb"]
        assert registry.entries() == []

    def test_budget_large_enough_keeps_everything(self, tmp_path):
        registry = _seed_registry(tmp_path, {"aa": (10, 2_000.0), "bb": (10, 3_000.0)})
        report = registry.gc(max_bytes=20)
        assert report["removed_entries"] == []
        assert len(registry.entries()) == 2

    def test_falls_back_to_created_at_for_never_used_rows(self, tmp_path):
        # bb was created later but never hit; aa's hit stamp is older
        # than bb's creation, so aa is the LRU row.
        registry = ArtifactRegistry(tmp_path)
        for key, created, used in (("aa", 500.0, 800.0), ("bb", 900.0, 0.0)):
            name = f"{key}.clx.json"
            (tmp_path / name).write_bytes(b"x" * 100)
            registry.record(
                RegistryEntry(
                    key=key, fingerprint="fp", target="t",
                    created_at=created, last_used_at=used, artifact=name,
                )
            )
        assert registry.gc(max_bytes=100)["removed_entries"] == ["aa"]

    @pytest.mark.parametrize("bad", [-1, True, 1.5, float("nan")])
    def test_rejects_invalid_budgets(self, tmp_path, bad):
        registry = ArtifactRegistry(tmp_path)
        with pytest.raises(CLXError, match="max_bytes must be an integer >= 0"):
            registry.gc(max_bytes=bad)

    def test_corrupt_manifest_deletes_nothing(self, tmp_path):
        registry = _seed_registry(tmp_path, {"aa": (10, 2_000.0)})
        registry.path.write_text("{not json", encoding="utf-8")
        report = registry.gc(max_bytes=0)
        assert report == {"removed_entries": [], "removed_files": []}
        assert (tmp_path / "aa.clx.json").exists()

    def test_cli_rejects_max_bytes_outside_gc(self, tmp_path, capsys):
        code = main(
            ["artifacts", "list", "--cache-dir", str(tmp_path), "--max-bytes", "1"]
        )
        assert code == 2
        assert "--max-bytes only applies to 'artifacts gc'" in capsys.readouterr().err

    def test_cli_gc_max_bytes(self, tmp_path, capsys):
        _seed_registry(tmp_path, {"aa": (100, 2_000.0), "bb": (100, 3_000.0)})
        code = main(
            [
                "artifacts", "gc", "--cache-dir", str(tmp_path),
                "--max-bytes", "100", "--json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["removed_entries"] == ["aa"]
        assert not (tmp_path / "aa.clx.json").exists()
