"""Regression tests for the CLI's large/ragged-CSV and UX bug fixes."""

from __future__ import annotations

import csv
import sys

import pytest

from repro.cli import main
from repro.clustering.cluster import PatternCluster
from repro.core.session import CLXSession
from repro.patterns.pattern import Pattern
from repro.tokens.tokenizer import tokenize
from repro.util.errors import ValidationError


@pytest.fixture
def phone_csv(tmp_path):
    path = tmp_path / "phones.csv"
    rows = [
        {"name": "A", "phone": "(734) 645-8397"},
        {"name": "B", "phone": "734.236.3466"},
        {"name": "C", "phone": "734-422-8073"},
    ]
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=["name", "phone"])
        writer.writeheader()
        writer.writerows(rows)
    return path


@pytest.fixture
def ragged_csv(tmp_path):
    """A CSV whose third data row has more cells than the header."""
    path = tmp_path / "ragged.csv"
    path.write_text(
        "name,phone\n"
        "A,(734) 645-8397\n"
        "B,734.236.3466\n"
        "C,734-422-8073,stray,cells\n",
        encoding="utf-8",
    )
    return path


@pytest.fixture
def artifact(phone_csv, tmp_path):
    path = tmp_path / "phone.clx.json"
    code = main(
        [
            "compile", str(phone_csv), "--column", "phone",
            "--target-pattern", "<D>3'-'<D>3'-'<D>4",
            "--output", str(path),
        ]
    )
    assert code == 0
    return path


class TestRaggedCsv:
    def test_transform_names_the_offending_row(self, ragged_csv, capsys):
        code = main(
            [
                "transform", str(ragged_csv), "--column", "phone",
                "--target-pattern", "<D>3'-'<D>3'-'<D>4",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "line 4" in err
        assert "4 cells" in err and "2 columns" in err

    def test_apply_names_the_offending_row(self, artifact, ragged_csv, capsys):
        code = main(["apply", str(artifact), str(ragged_csv)])
        err = capsys.readouterr().err
        assert code == 2
        assert "line 4" in err
        # No opaque DictWriter ValueError traceback.
        assert "dict contains fields" not in err

    def test_profile_tolerates_ragged_rows(self, ragged_csv, capsys):
        # Read-only commands have nothing to corrupt: the profiled column
        # is still well-defined, so they keep working.
        code = main(["profile", str(ragged_csv), "--column", "phone"])
        assert code == 0
        assert "<D>3" in capsys.readouterr().out

    def test_short_rows_still_pass(self, artifact, tmp_path, capsys):
        path = tmp_path / "short.csv"
        path.write_text("name,phone\nA,(734) 645-8397\nB\n", encoding="utf-8")
        code = main(["apply", str(artifact), str(path)])
        captured = capsys.readouterr()
        assert code in (0, 1)  # short row profiles as "", possibly flagged
        assert "734-645-8397" in captured.out


class TestSampleCount:
    def test_sample_zero_returns_no_values(self):
        cluster = PatternCluster(pattern=Pattern(tokenize("123")), values=["123", "456"])
        assert cluster.sample(0) == []
        assert cluster.sample(-1) == []
        assert cluster.sample(1) == ["123"]

    def test_profile_samples_zero_prints_no_examples(self, phone_csv, capsys):
        code = main(["profile", str(phone_csv), "--samples", "0", "--column", "phone"])
        out = capsys.readouterr().out
        assert code == 0
        assert "<D>3" in out  # patterns still listed
        assert "734" not in out.replace("<D>3", "")  # but no sample values

    def test_negative_samples_is_an_error(self, phone_csv, capsys):
        code = main(["profile", str(phone_csv), "--samples", "-2", "--column", "phone"])
        assert code == 2
        assert "--samples" in capsys.readouterr().err


class TestGeneralizeRange:
    @pytest.mark.parametrize("value", ["-1", "4", "7"])
    def test_cli_rejects_out_of_range_values(self, phone_csv, value, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "transform", str(phone_csv), "--column", "phone",
                    "--target-example", "734-422-8073",
                    "--generalize", value,
                ]
            )
        assert "invalid choice" in capsys.readouterr().err

    def test_compile_rejects_out_of_range_values(self, phone_csv, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "compile", str(phone_csv), "--column", "phone",
                    "--target-example", "734-422-8073",
                    "--generalize", "9",
                ]
            )
        assert "invalid choice" in capsys.readouterr().err

    def test_library_raises_instead_of_clamping(self):
        session = CLXSession(["734-422-8073"])
        with pytest.raises(ValidationError, match="generalize"):
            session.label_target_from_string("734-422-8073", generalize=7)
        with pytest.raises(ValidationError, match="generalize"):
            session.label_target_from_string("734-422-8073", generalize=-1)

    def test_all_in_range_values_work(self):
        session = CLXSession(["734-422-8073"])
        notations = {
            generalize: session.label_target_from_string(
                "734-422-8073", generalize=generalize
            ).notation()
            for generalize in range(4)
        }
        assert notations[0] == "<D>3'-'<D>3'-'<D>4"
        assert notations[1] == "<D>+'-'<D>+'-'<D>+"
        assert len(set(notations.values())) >= 3  # rounds actually applied


class _BrokenStdout:
    """A stdout stand-in whose pipe reader has gone away."""

    def write(self, text):
        raise BrokenPipeError(32, "Broken pipe")

    def flush(self):
        pass


class TestBrokenPipe:
    def test_apply_exits_quietly_with_sigpipe_code(self, artifact, phone_csv, monkeypatch):
        monkeypatch.setattr(sys, "stdout", _BrokenStdout())
        code = main(["apply", str(artifact), str(phone_csv)])
        assert code == 141  # 128 + SIGPIPE

    def test_profile_exits_quietly_with_sigpipe_code(self, phone_csv, monkeypatch):
        monkeypatch.setattr(sys, "stdout", _BrokenStdout())
        code = main(["profile", str(phone_csv), "--column", "phone"])
        assert code == 141


class TestApplyWorkers:
    def test_parallel_apply_matches_single_process_output(self, artifact, tmp_path):
        source = tmp_path / "big.csv"
        with source.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["phone"])
            for index in range(300):
                writer.writerow([f"906.{index % 900 + 100}.{index % 9000 + 1000}"])
        single = tmp_path / "single.csv"
        parallel = tmp_path / "parallel.csv"
        assert main(["apply", str(artifact), str(source), "--output", str(single)]) == 0
        assert (
            main(
                [
                    "apply", str(artifact), str(source),
                    "--workers", "2", "--chunk-size", "32",
                    "--output", str(parallel),
                ]
            )
            == 0
        )
        assert parallel.read_text(encoding="utf-8") == single.read_text(encoding="utf-8")

    def test_workers_must_be_positive(self, artifact, phone_csv, capsys):
        code = main(["apply", str(artifact), str(phone_csv), "--workers", "0"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err


class TestDispatchKnobs:
    """CLI contract for the hot-loop dispatch knobs.

    ``--memo-size`` and ``--adaptive-chunks`` are pure performance
    knobs: bad values exit 2 with a usage error naming the flag, and
    any valid setting leaves the output bytes identical to a default
    run.
    """

    def _apply(self, artifact, source, output, *extra):
        return main(
            ["apply", str(artifact), str(source), "--output", str(output), *extra]
        )

    @pytest.mark.parametrize("value", ["-1", "-4096"])
    def test_negative_memo_size_is_an_error(self, artifact, phone_csv, value, capsys):
        code = main(["apply", str(artifact), str(phone_csv), "--memo-size", value])
        assert code == 2
        assert "--memo-size" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-5"])
    def test_non_positive_adaptive_target_is_an_error(
        self, artifact, phone_csv, value, capsys
    ):
        code = main(["apply", str(artifact), str(phone_csv), "--adaptive-chunks", value])
        assert code == 2
        assert "--adaptive-chunks" in capsys.readouterr().err

    def test_memo_size_zero_disables_the_memo_but_still_applies(
        self, artifact, phone_csv, tmp_path
    ):
        default = tmp_path / "default.csv"
        unmemoized = tmp_path / "memo-off.csv"
        assert self._apply(artifact, phone_csv, default) == 0
        assert self._apply(artifact, phone_csv, unmemoized, "--memo-size", "0") == 0
        assert unmemoized.read_bytes() == default.read_bytes()

    def test_adaptive_chunks_keeps_output_identical(self, artifact, phone_csv, tmp_path):
        static = tmp_path / "static.csv"
        adaptive = tmp_path / "adaptive.csv"
        assert self._apply(artifact, phone_csv, static) == 0
        assert (
            self._apply(
                artifact, phone_csv, adaptive,
                "--adaptive-chunks", "50", "--workers", "2", "--chunk-size", "2",
            )
            == 0
        )
        assert adaptive.read_bytes() == static.read_bytes()
