"""Tests for the verification/specification cost model."""

from __future__ import annotations

import pytest

from repro.simulation.verification import UserCostModel


class TestCostModel:
    def setup_method(self):
        self.model = UserCostModel()

    def test_clx_verification_depends_on_patterns_not_rows(self):
        small = self.model.clx_verification(pattern_count=2, branch_count=1)
        large = self.model.clx_verification(pattern_count=6, branch_count=5)
        assert small < large
        # No row count appears anywhere in the CLX verification model.
        assert large == 6 * self.model.pattern_read_seconds + 5 * self.model.replace_read_seconds

    def test_flashfill_scan_grows_when_failures_get_rare(self):
        many_failures = self.model.flashfill_scan(rows=300, remaining_failures=100)
        few_failures = self.model.flashfill_scan(rows=300, remaining_failures=1)
        assert few_failures > many_failures

    def test_flashfill_final_pass_reads_everything(self):
        assert self.model.flashfill_scan(rows=300, remaining_failures=0) == pytest.approx(
            300 * self.model.row_scan_seconds
        )

    def test_flashfill_scan_scales_with_rows(self):
        small = self.model.flashfill_scan(rows=10, remaining_failures=0)
        large = self.model.flashfill_scan(rows=300, remaining_failures=0)
        assert large == pytest.approx(30 * small)

    def test_regex_specification_is_two_regexes(self):
        assert self.model.regex_specification() == 2 * self.model.regex_write_seconds

    def test_regex_scan_mirrors_flashfill(self):
        assert self.model.regex_scan(100, 3) == self.model.flashfill_scan(100, 3)

    def test_clx_specification(self):
        assert self.model.clx_specification(repairs=0) == self.model.select_seconds
        assert self.model.clx_specification(repairs=2) == (
            self.model.select_seconds + 2 * self.model.repair_seconds
        )
