"""Tests for the repro-clx command-line interface."""

from __future__ import annotations

import csv

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def phone_csv(tmp_path):
    path = tmp_path / "phones.csv"
    rows = [
        {"name": "A", "phone": "(734) 645-8397"},
        {"name": "B", "phone": "734.236.3466"},
        {"name": "C", "phone": "734-422-8073"},
        {"name": "D", "phone": "(734)586-7252"},
    ]
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=["name", "phone"])
        writer.writeheader()
        writer.writerows(rows)
    return path


class TestProfileCommand:
    def test_prints_pattern_clusters(self, phone_csv, capsys):
        code = main(["profile", str(phone_csv), "--column", "phone"])
        captured = capsys.readouterr()
        assert code == 0
        assert "<D>3'.'<D>3'.'<D>4" in captured.out
        assert "rows" in captured.out

    def test_column_by_index(self, phone_csv, capsys):
        code = main(["profile", str(phone_csv), "--column", "1"])
        assert code == 0
        assert "<D>3" in capsys.readouterr().out

    def test_unknown_column_is_an_error(self, phone_csv, capsys):
        code = main(["profile", str(phone_csv), "--column", "missing"])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        code = main(["profile", str(tmp_path / "nope.csv"), "--column", "x"])
        assert code == 2


class TestTransformCommand:
    def test_transform_to_stdout(self, phone_csv, capsys):
        code = main(
            [
                "transform", str(phone_csv), "--column", "phone",
                "--target-pattern", "<D>3'-'<D>3'-'<D>4",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "phone_transformed" in captured.out
        assert "734-236-3466" in captured.out
        assert "Replace" in captured.err

    def test_transform_to_file_with_target_example(self, phone_csv, tmp_path, capsys):
        output = tmp_path / "out.csv"
        code = main(
            [
                "transform", str(phone_csv), "--column", "phone",
                "--target-example", "734-422-8073",
                "--output", str(output),
                "--output-column", "normalized",
            ]
        )
        assert code == 0
        with output.open(newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert all(row["normalized"].count("-") == 2 for row in rows)

    def test_missing_target_is_an_error(self, phone_csv, capsys):
        code = main(["transform", str(phone_csv), "--column", "phone"])
        assert code == 2
        assert "target" in capsys.readouterr().err

    def test_flagged_rows_change_exit_code(self, tmp_path, capsys):
        path = tmp_path / "mixed.csv"
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=["phone"])
            writer.writeheader()
            writer.writerows([{"phone": "734.236.3466"}, {"phone": "N/A"}])
        code = main(
            ["transform", str(path), "--column", "phone",
             "--target-pattern", "<D>3'-'<D>3'-'<D>4"]
        )
        assert code == 1
        assert "flagged" in capsys.readouterr().err


class TestSuiteCommand:
    def test_prints_table6_statistics(self, capsys):
        code = main(["suite"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SyGuS" in out and "Overall" in out

    def test_verbose_lists_data_types(self, capsys):
        code = main(["suite", "--verbose"])
        assert code == 0
        assert "phone number" in capsys.readouterr().out


class TestParser:
    def test_parser_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])
