"""Regex safety analysis (repro.analysis.redos).

The parser must cover exactly the regex subset the token renderer (and
the dispatch compiler around it) emits; the structural scan must flag
the two ReDoS shapes; and the probe must confirm real blow-ups within a
hard time bound — it can never hang, whatever the regex.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.redos import (
    PROBE_BUDGET_SECONDS,
    analyze_regex,
    parse_regex,
    scan_structure,
)
from repro.patterns.matching import compiled_with_groups
from repro.patterns.parse import parse_pattern as P
from repro.patterns.regex import pattern_to_regex


class TestParser:
    @pytest.mark.parametrize(
        "notation",
        ["<D>3'-'<D>4", "'(a)+*?.'<D>+", "<AN>+'_'<U>2", "'ID-'<L>+"],
    )
    def test_parses_every_rendered_pattern_regex(self, notation):
        # Both regex flavors the engine actually compiles.
        parse_regex(pattern_to_regex(P(notation)))
        parse_regex(compiled_with_groups(P(notation)).pattern)

    @pytest.mark.parametrize(
        "source",
        [
            r"^(?:[a-z]+)+$",
            r"^(?=.*kg)[a-z0-9]+$",
            r"^(?i:abc)[0-9]{3,}$",
            r"^(?P<word>\w+)\s?$",
            r"^[^@]+@[a-z.]+$",
            r"^(a|bc|[0-9]{2,4})?$",
        ],
    )
    def test_parses_common_constructs(self, source):
        parse_regex(source)

    def test_unparseable_regex_yields_no_findings(self):
        issues, probe = analyze_regex(r"^(?<=look)behind$")
        assert issues == [] and probe is None


class TestStructure:
    def test_nested_unbounded_quantifier_flagged(self):
        issues = scan_structure(parse_regex(r"^(?:[a-z]+)+$"))
        assert "nested" in {issue.kind for issue in issues}

    def test_overlapping_alternation_under_quantifier_flagged(self):
        issues = scan_structure(parse_regex(r"^(?:ab|[a-z]c)+$"))
        assert "ambiguous" in {issue.kind for issue in issues}

    def test_adjacent_overlapping_unbounded_repeats_flagged(self):
        issues = scan_structure(parse_regex(r"^([a-z]+)([a-z0-9]+)$"))
        assert "ambiguous" in {issue.kind for issue in issues}

    @pytest.mark.parametrize(
        "source",
        [
            r"^[0-9]{3}-[0-9]{4}$",          # fixed counts only
            r"^[a-z]+@[0-9]+$",              # disjoint adjacent repeats
            r"^(?:ab|cd)+$",                 # disjoint alternation arms
            r"^[a-z]+\.[a-z]+$",             # separated by a literal
        ],
    )
    def test_healthy_regexes_are_clean(self, source):
        assert scan_structure(parse_regex(source)) == []


class TestProbe:
    def test_exponential_regex_is_confirmed_slow(self):
        issues, probe = analyze_regex(r"^(?:[a-z]+)+$")
        assert issues and probe is not None
        assert probe.slow
        assert probe.seconds > PROBE_BUDGET_SECONDS

    def test_probe_is_time_bounded(self):
        start = time.perf_counter()
        analyze_regex(r"^(?:[a-z]+)+$")
        # Structural flag + probe must stay well under a second even for
        # a regex whose worst case is measured in hours.
        assert time.perf_counter() - start < 2.0

    def test_clean_regex_is_never_probed(self):
        issues, probe = analyze_regex(r"^[0-9]{3}-[0-9]{4}$")
        assert issues == [] and probe is None

    def test_polynomial_ambiguity_stays_warn_level(self):
        # Two adjacent overlapping '+' groups backtrack polynomially —
        # structurally flagged, but the probe finds them fast, so no
        # CLX006 escalation.
        issues, probe = analyze_regex(r"^([a-z]+)([a-z0-9]+)$")
        assert {issue.kind for issue in issues} == {"ambiguous"}
        assert probe is not None and not probe.slow
