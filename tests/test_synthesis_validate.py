"""Tests for source-candidate validation (Section 6.1)."""

from __future__ import annotations

from repro.patterns.parse import parse_pattern
from repro.synthesis.validate import supply_frequency, token_frequency, validate_source
from repro.tokens.classes import TokenClass


class TestTokenFrequency:
    def test_matches_pattern_frequency(self):
        pattern = parse_pattern("<D>3'-'<D>4")
        assert token_frequency(pattern, TokenClass.DIGIT) == 7

    def test_plus_counts_as_one(self):
        assert token_frequency(parse_pattern("<U>+"), TokenClass.UPPER) == 1


class TestSupplyFrequency:
    def test_literal_characters_supply_their_classes(self):
        pattern = parse_pattern("'CPT''-'<D>5")
        assert supply_frequency(pattern, TokenClass.UPPER) == 3
        assert supply_frequency(pattern, TokenClass.ALPHA) == 3
        assert supply_frequency(pattern, TokenClass.DIGIT) == 5

    def test_base_tokens_still_counted(self):
        pattern = parse_pattern("<U>2'x'")
        assert supply_frequency(pattern, TokenClass.UPPER) == 2
        assert supply_frequency(pattern, TokenClass.LOWER) == 1


class TestValidateSource:
    def test_paper_example_7_accepts(self):
        """'[CPT-00350' style pattern is a valid source for '[<U>+-<D>+]'."""
        target = parse_pattern("'['<U>+'-'<D>+']'")
        source = parse_pattern("'['<U>3'-'<D>5")
        assert validate_source(source, target)

    def test_paper_example_7_rejects(self):
        """'[CPT-' has no digits, so it cannot be a source."""
        target = parse_pattern("'['<U>+'-'<D>+']'")
        source = parse_pattern("'['<U>3'-'")
        assert not validate_source(source, target)

    def test_noise_value_rejected(self, phone_target):
        assert not validate_source(parse_pattern("<U>'/'<U>"), phone_target)

    def test_phone_formats_accepted(self, phone_target):
        for notation in (
            "'('<D>3')'' '<D>3'-'<D>4",
            "<D>3'.'<D>3'.'<D>4",
            "<D>10",
        ):
            assert validate_source(parse_pattern(notation), phone_target)

    def test_too_general_pattern_rejected(self):
        """<AN>+ patterns cannot prove they supply the needed classes."""
        target = parse_pattern("<U><L>+':'<D>+")
        source = parse_pattern("<AN>+','<AN>+")
        assert not validate_source(source, target)

    def test_source_equal_to_target_is_valid(self, phone_target):
        assert validate_source(phone_target, phone_target)

    def test_validation_not_symmetric(self):
        rich = parse_pattern("<D>5<U>3")
        poor = parse_pattern("<D>2")
        assert validate_source(rich, poor)
        assert not validate_source(poor, rich)
