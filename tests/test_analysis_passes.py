"""The analyzer's passes and report container over hand-built programs.

Every rule id gets a program seeded to trip exactly it; a final test
checks the clean program stays clean.  The analyzer consumes real
CompiledProgram artifacts, so these double as integration tests of the
dispatch semantics the passes model.
"""

from __future__ import annotations

import pytest

from repro.analysis import AnalysisReport, Severity, analyze_program, finding
from repro.analysis.analyzer import analyze_artifacts
from repro.analysis.passes import check_conflicts, reachability_only
from repro.dsl.ast import AtomicPlan, Branch, ConstStr, Extract, UniFiProgram
from repro.dsl.guards import ContainsGuard
from repro.engine.compiled import CompiledProgram
from repro.patterns.parse import parse_pattern as P
from repro.util.errors import CLXError

TARGET = P("<D>3'-'<D>4")

#: The canonical live branch: 555.1234 -> 555-1234.
DOT_BRANCH = Branch(
    P("<D>3'.'<D>4"), AtomicPlan([Extract(1), ConstStr("-"), Extract(3)])
)


def _compiled(branches, target=TARGET, metadata=None):
    return CompiledProgram(UniFiProgram(branches), target, metadata=metadata)


def _rules(report):
    return [item.rule_id for item in report.findings]


class TestReachability:
    def test_branch_subsumed_by_target_is_clx001(self):
        report = analyze_program(
            _compiled([DOT_BRANCH, Branch(P("<D>3'-'<D>4"), AtomicPlan([Extract(1, 3)]))])
        )
        assert "CLX001" in _rules(report)
        [item] = [f for f in report.findings if f.rule_id == "CLX001"]
        assert item.location.endswith("branch[2]")
        assert item.severity is Severity.ERROR

    def test_branch_shadowed_by_earlier_unguarded_is_clx002(self):
        shadowed = Branch(P("<D>3'.'<D>4"), AtomicPlan([ConstStr("000-0000")]))
        report = analyze_program(_compiled([DOT_BRANCH, shadowed]))
        [item] = [f for f in report.findings if f.rule_id == "CLX002"]
        assert item.location.endswith("branch[2]")
        assert item.data["shadowed_by"] == [1]

    def test_guarded_branches_shadow_nothing(self):
        guarded = Branch(
            P("<D>3'.'<D>4"),
            AtomicPlan([Extract(1), ConstStr("-"), Extract(3)]),
            guard=ContainsGuard("555"),
        )
        fallback = Branch(P("<D>3'.'<D>4"), AtomicPlan([ConstStr("000-0000")]))
        report = analyze_program(_compiled([guarded, fallback]))
        assert "CLX002" not in _rules(report)

    def test_wider_earlier_branch_shadows_narrower_later(self):
        wide = Branch(P("<D>+'.'<D>+"), AtomicPlan([Extract(1), ConstStr("-"), Extract(3)]))
        narrow = Branch(P("<D>3'.'<D>4"), AtomicPlan([ConstStr("000-0000")]))
        report = analyze_program(_compiled([wide, narrow]))
        assert "CLX002" in _rules(report)

    def test_reachability_only_is_just_the_dead_arm_rules(self):
        compiled = _compiled(
            [DOT_BRANCH, Branch(P("<D>3'-'<D>4"), AtomicPlan([Extract(1, 3)]))]
        )
        findings = reachability_only(compiled, "pre-flight")
        assert [f.rule_id for f in findings] == ["CLX001"]
        assert findings[0].location == "pre-flight:branch[2]"


class TestOverlap:
    def test_overlapping_unguarded_with_different_plans_is_clx003(self):
        wide = Branch(P("<D>+'.'<D>4"), AtomicPlan([ConstStr("000-0000")]))
        report = analyze_program(_compiled([DOT_BRANCH, wide]))
        [item] = [f for f in report.findings if f.rule_id == "CLX003"]
        assert item.location.endswith("branch[2]")
        assert item.data["overlaps_branch"] == 1

    def test_identical_plans_do_not_warn(self):
        wide = Branch(
            P("<D>+'.'<D>4"), AtomicPlan([Extract(1), ConstStr("-"), Extract(3)])
        )
        report = analyze_program(_compiled([DOT_BRANCH, wide]))
        assert "CLX003" not in _rules(report)

    def test_overlap_only_inside_target_language_is_ignored(self):
        # Both branches also accept strings the target intercepts; if
        # that is the *only* overlap, order cannot matter.
        first = Branch(P("<D>3'-'<D>+"), AtomicPlan([Extract(1, 3)]))
        second = Branch(P("<D>3'-'<D>4"), AtomicPlan([ConstStr("000-0000")]))
        report = analyze_program(_compiled([first, second]))
        # branch 2 is fully dead (CLX001) — and precisely because every
        # shared string is a target string, no CLX003 fires.
        assert "CLX003" not in _rules(report)


class TestPlanAndGuardSanity:
    def test_identity_plan_is_clx007(self):
        identity = Branch(P("<D>+'/'<D>+"), AtomicPlan([Extract(1, 3)]))
        report = analyze_program(_compiled([identity]))
        assert "CLX007" in _rules(report)

    def test_constant_only_plan_is_clx008(self):
        constant = Branch(P("<L>+"), AtomicPlan([ConstStr("555-0000")]))
        report = analyze_program(_compiled([constant]))
        [item] = [f for f in report.findings if f.rule_id == "CLX008"]
        assert item.data["constant"] == "555-0000"
        assert item.data["matches_target"] is True

    def test_unused_data_tokens_are_clx009(self):
        partial = Branch(P("<D>3'.'<D>4"), AtomicPlan([Extract(1)]))
        report = analyze_program(_compiled([partial]))
        [item] = [f for f in report.findings if f.rule_id == "CLX009"]
        assert item.data["unused_tokens"] == [3]

    def test_unsatisfiable_guard_is_clx010(self):
        guarded = Branch(
            P("<U>3'-'<D>2"), AtomicPlan([Extract(3)]), guard=ContainsGuard("zzz")
        )
        report = analyze_program(_compiled([guarded]))
        assert "CLX010" in _rules(report)

    def test_redundant_guard_is_clx011(self):
        guarded = Branch(
            P("'ID-'<D>4"), AtomicPlan([Extract(2)]), guard=ContainsGuard("ID")
        )
        report = analyze_program(_compiled([guarded]))
        assert "CLX011" in _rules(report)

    def test_satisfiable_informative_guard_is_clean(self):
        guarded = Branch(
            P("<D>+' '<L>+"),
            AtomicPlan([Extract(1)]),
            guard=ContainsGuard("kg"),
        )
        report = analyze_program(_compiled([guarded]))
        assert "CLX010" not in _rules(report)
        assert "CLX011" not in _rules(report)


class TestCoverage:
    def test_residual_cluster_is_clx012(self):
        from repro.clustering.incremental import ColumnProfile

        profile = ColumnProfile()
        profile.observe_all(["555.1234", "555.9999", "(555) 1234"])
        report = analyze_program(
            _compiled([DOT_BRANCH]), name="a.clx.json",
            hierarchy=profile.to_hierarchy(),
        )
        [item] = [f for f in report.findings if f.rule_id == "CLX012"]
        assert item.location == "a.clx.json"
        assert item.data["rows"] == 1
        assert item.data["samples"] == ["(555) 1234"]

    def test_covered_profile_is_clean(self):
        from repro.clustering.incremental import ColumnProfile

        profile = ColumnProfile()
        profile.observe_all(["555.1234", "555-1234"])  # branch + target
        report = analyze_program(
            _compiled([DOT_BRANCH]), hierarchy=profile.to_hierarchy()
        )
        assert "CLX012" not in _rules(report)


class TestConflicts:
    def test_same_column_is_clx013(self):
        first = _compiled([DOT_BRANCH], metadata={"column": "phone"})
        second = _compiled([DOT_BRANCH], metadata={"column": "phone"})
        findings = check_conflicts([("a.json", first), ("b.json", second)])
        [item] = [f for f in findings if f.rule_id == "CLX013"]
        assert item.data["artifacts"] == ["a.json", "b.json"]

    def test_output_chain_collision_is_clx014(self):
        first = _compiled([DOT_BRANCH], metadata={"column": "phone"})
        second = _compiled([DOT_BRANCH], metadata={"column": "phone_transformed"})
        findings = check_conflicts([("a.json", first), ("b.json", second)])
        assert [f.rule_id for f in findings] == ["CLX014"]

    def test_distinct_columns_are_clean(self):
        first = _compiled([DOT_BRANCH], metadata={"column": "phone"})
        second = _compiled([DOT_BRANCH], metadata={"column": "fax"})
        assert check_conflicts([("a.json", first), ("b.json", second)]) == []

    def test_analyze_artifacts_includes_conflicts(self):
        first = _compiled([DOT_BRANCH], metadata={"column": "phone"})
        second = _compiled([DOT_BRANCH], metadata={"column": "phone"})
        report = analyze_artifacts([("a.json", first), ("b.json", second)])
        assert "CLX013" in _rules(report)


class TestCleanProgram:
    def test_a_sensible_program_has_no_findings(self):
        paren = Branch(
            P("'('<D>3') '<D>4"),
            AtomicPlan([Extract(2), ConstStr("-"), Extract(4)]),
        )
        report = analyze_program(_compiled([DOT_BRANCH, paren]))
        assert report.findings == []
        assert report.summary() == {"info": 0, "warn": 0, "error": 0}
        assert report.max_severity() is None
        assert report.exit_code(Severity.ERROR) == 0


class TestReportContainer:
    def test_ordering_is_by_location_then_rule(self):
        items = [
            finding("CLX003", "z.json:branch[2]", "m"),
            finding("CLX001", "z.json:branch[10]", "m"),
            finding("CLX012", "z.json", "m"),
            finding("CLX001", "a.json:branch[1]", "m"),
        ]
        report = AnalysisReport(items)
        assert [(f.location, f.rule_id) for f in report.findings] == [
            ("a.json:branch[1]", "CLX001"),
            ("z.json", "CLX012"),
            ("z.json:branch[2]", "CLX003"),
            ("z.json:branch[10]", "CLX001"),
        ]

    def test_exit_code_thresholds(self):
        report = AnalysisReport([finding("CLX003", "a", "m")])  # one WARN
        assert report.exit_code(Severity.ERROR) == 0
        assert report.exit_code(Severity.WARN) == 1
        assert report.exit_code(Severity.INFO) == 1

    def test_severity_parse_accepts_aliases_and_rejects_unknown(self):
        assert Severity.parse("WARN") is Severity.WARN
        assert Severity.parse("warning") is Severity.WARN
        assert Severity.parse(" error ") is Severity.ERROR
        with pytest.raises(CLXError, match="unknown severity"):
            Severity.parse("banana")

    def test_unknown_rule_id_is_a_bug(self):
        with pytest.raises(CLXError, match="rule id"):
            finding("CLX999", "a", "m")
