"""Tests for the Token value object."""

from __future__ import annotations

import pytest

from repro.tokens.classes import TokenClass
from repro.tokens.token import PLUS, Token


class TestConstruction:
    def test_base_token(self):
        token = Token.base(TokenClass.DIGIT, 3)
        assert token.klass is TokenClass.DIGIT
        assert token.quantifier == 3
        assert not token.is_literal

    def test_plus_token(self):
        token = Token.base(TokenClass.LOWER, PLUS)
        assert token.is_plus
        assert token.fixed_length is None

    def test_literal_token(self):
        token = Token.lit("-")
        assert token.is_literal
        assert token.literal == "-"
        assert token.fixed_length == 1

    def test_literal_requires_text(self):
        with pytest.raises(ValueError):
            Token.lit("")

    def test_base_rejects_zero_quantifier(self):
        with pytest.raises(ValueError):
            Token.base(TokenClass.DIGIT, 0)

    def test_base_rejects_negative_quantifier(self):
        with pytest.raises(ValueError):
            Token.base(TokenClass.DIGIT, -2)

    def test_base_constructor_rejects_literal_class(self):
        with pytest.raises(ValueError):
            Token.base(TokenClass.LITERAL, 1)

    def test_base_token_must_not_carry_literal(self):
        with pytest.raises(ValueError):
            Token(klass=TokenClass.DIGIT, quantifier=1, literal="5")

    def test_tokens_are_hashable_and_equal_by_value(self):
        assert Token.base(TokenClass.DIGIT, 3) == Token.base(TokenClass.DIGIT, 3)
        assert hash(Token.lit("-")) == hash(Token.lit("-"))


class TestMatchesText:
    def test_exact_quantifier(self):
        assert Token.base(TokenClass.DIGIT, 3).matches_text("123")
        assert not Token.base(TokenClass.DIGIT, 3).matches_text("12")
        assert not Token.base(TokenClass.DIGIT, 3).matches_text("12a")

    def test_plus_quantifier(self):
        token = Token.base(TokenClass.LOWER, PLUS)
        assert token.matches_text("a")
        assert token.matches_text("abcdef")
        assert not token.matches_text("")
        assert not token.matches_text("aB")

    def test_literal_matches_only_its_text(self):
        token = Token.lit("Dr.")
        assert token.matches_text("Dr.")
        assert not token.matches_text("Dr")


class TestSyntacticSimilarity:
    """Definition 6.1 plus the literal/base extension."""

    def test_same_class_same_quantifier(self):
        assert Token.base(TokenClass.DIGIT, 3).syntactically_similar(
            Token.base(TokenClass.DIGIT, 3)
        )

    def test_same_class_different_quantifier(self):
        assert not Token.base(TokenClass.DIGIT, 3).syntactically_similar(
            Token.base(TokenClass.DIGIT, 4)
        )

    def test_plus_is_compatible_with_any_count(self):
        assert Token.base(TokenClass.DIGIT, PLUS).syntactically_similar(
            Token.base(TokenClass.DIGIT, 7)
        )
        assert Token.base(TokenClass.DIGIT, 7).syntactically_similar(
            Token.base(TokenClass.DIGIT, PLUS)
        )

    def test_different_classes_are_not_similar(self):
        assert not Token.base(TokenClass.DIGIT, 3).syntactically_similar(
            Token.base(TokenClass.UPPER, 3)
        )

    def test_literals_similar_only_when_equal(self):
        assert Token.lit("-").syntactically_similar(Token.lit("-"))
        assert not Token.lit("-").syntactically_similar(Token.lit("."))

    def test_literal_similar_to_compatible_base(self):
        # 'CPT' can be extracted into <U>3 or <U>+.
        assert Token.lit("CPT").syntactically_similar(Token.base(TokenClass.UPPER, 3))
        assert Token.lit("CPT").syntactically_similar(Token.base(TokenClass.UPPER, PLUS))
        assert not Token.lit("CPT").syntactically_similar(Token.base(TokenClass.UPPER, 4))
        assert not Token.lit("CPT").syntactically_similar(Token.base(TokenClass.DIGIT, 3))

    def test_similarity_is_symmetric(self):
        base = Token.base(TokenClass.UPPER, 3)
        lit = Token.lit("CPT")
        assert base.syntactically_similar(lit) == lit.syntactically_similar(base)


class TestRendering:
    def test_regex_fragments(self):
        assert Token.base(TokenClass.DIGIT, 3).to_regex() == "[0-9]{3}"
        assert Token.base(TokenClass.DIGIT, 1).to_regex() == "[0-9]"
        assert Token.base(TokenClass.LOWER, PLUS).to_regex() == "[a-z]+"
        assert Token.lit(".").to_regex() == "\\."

    def test_notation(self):
        assert Token.base(TokenClass.DIGIT, 3).notation() == "<D>3"
        assert Token.base(TokenClass.DIGIT, 1).notation() == "<D>"
        assert Token.base(TokenClass.ALNUM, PLUS).notation() == "<AN>+"
        assert Token.lit(":").notation() == "':'"
