"""Tests for the one-pass, pipelined table apply.

Two equivalence suites anchor this file: across every synthesizable
task of the 47-task benchmark suite, (a) the streaming
``transform_table_iter`` and the worker fan-out of ``transform_table``
must equal the in-process batch result row for row, and (b) the
encoded chunks of :class:`ShardedTableExecutor` must decode to exactly
what ``transform_table`` produces — pipelining is an execution detail,
never a semantics change.
"""

from __future__ import annotations

import csv
import io
import json
import os

import pytest

from repro.bench.phone import phone_dataset
from repro.bench.suite import benchmark_suite
from repro.core.session import CLXSession
from repro.engine.executor import TransformEngine
from repro.engine.parallel import ShardedTableExecutor
from repro.util.errors import CLXError, SynthesisError, ValidationError


class _Kamikaze(str):
    """A line whose unpickling kills the worker process receiving it."""

    def __reduce__(self):
        return (os._exit, (13,))


def _engines_for_suite(limit=None):
    pairs = []
    for task in benchmark_suite():
        session = CLXSession(task.inputs)
        session.label_target(task.target_pattern())
        try:
            engine = session.engine()
        except SynthesisError:
            continue
        pairs.append((task, engine))
        if limit is not None and len(pairs) >= limit:
            break
    return pairs


@pytest.fixture(scope="module")
def phone_engine():
    raw, _ = phone_dataset(count=120, format_count=4, seed=13)
    session = CLXSession(raw)
    session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
    return session.engine()


def _csv_lines(header, rows):
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerows(rows)
    return buffer.getvalue().splitlines(keepends=True)


class TestSuiteEquivalence:
    def test_iter_and_parallel_match_batch_across_the_suite(self):
        pairs = _engines_for_suite()
        assert len(pairs) >= 40  # almost all of the 47 tasks synthesize
        for task, engine in pairs:
            rows = [{"id": str(index), "value": value} for index, value in enumerate(task.inputs)]
            batch = TransformEngine.transform_table(rows, {"value": engine})
            streamed = list(
                TransformEngine.transform_table_iter(iter(rows), {"value": engine}, chunk_size=7)
            )
            assert streamed == batch, task.task_id

    def test_sharded_chunks_decode_to_batch_output_across_the_suite(self):
        # workers=1 runs the identical per-chunk pipeline inline (no
        # pool), so the whole suite is cheap; the parallel run below
        # covers pool fan-out semantics at scale.
        for task, engine in _engines_for_suite():
            rows = [{"id": str(index), "value": value} for index, value in enumerate(task.inputs)]
            batch = TransformEngine.transform_table(rows, {"value": engine})
            lines = _csv_lines(["id", "value"], [[row["id"], row["value"]] for row in rows])
            with ShardedTableExecutor(
                {"value": engine},
                ["id", "value"],
                output_columns={"value": "value"},
                workers=1,
                chunk_size=5,
            ) as executor:
                encoded = "".join(chunk for chunk, _, _, _ in executor.run_chunks(lines))
            decoded = list(csv.DictReader(io.StringIO(executor.header_text() + encoded)))
            assert decoded == [
                {"id": row["id"], "value": row["value"]} for row in batch
            ], task.task_id

    def test_worker_fan_out_matches_batch(self, phone_engine):
        values, _ = phone_dataset(count=900, format_count=4, seed=23)
        rows = [{"id": str(index), "phone": value} for index, value in enumerate(values)]
        batch = TransformEngine.transform_table(rows, {"phone": phone_engine})
        parallel = TransformEngine.transform_table(
            rows, {"phone": phone_engine}, workers=2, chunk_size=64
        )
        assert parallel == batch


class TestTransformTableIter:
    def test_streams_lazily(self, phone_engine):
        pulled = []

        def source():
            for index in range(500):
                pulled.append(index)
                yield {"phone": "734-422-8073"}

        iterator = TransformEngine.transform_table_iter(
            source(), {"phone": phone_engine}, chunk_size=10
        )
        next(iterator)
        assert len(pulled) <= 20

    def test_validates_programs_and_chunk_size_eagerly(self, phone_engine):
        with pytest.raises(ValidationError):
            TransformEngine.transform_table_iter([], {"phone": "nope"})
        with pytest.raises(ValidationError):
            TransformEngine.transform_table_iter([], {"phone": phone_engine}, chunk_size=0)

    def test_missing_column_names_global_row_index(self, phone_engine):
        rows = [{"phone": "734-422-8073"}] * 5 + [{"other": "x"}]
        iterator = TransformEngine.transform_table_iter(
            iter(rows), {"phone": phone_engine}, chunk_size=2
        )
        with pytest.raises(ValidationError, match="row 5"):
            list(iterator)

    def test_transform_table_rejects_bad_workers(self, phone_engine):
        with pytest.raises(ValidationError):
            TransformEngine.transform_table([], {"phone": phone_engine}, workers=0)


class TestShardedTableExecutor:
    def test_multi_column_one_pass(self, phone_engine):
        values, _ = phone_dataset(count=40, format_count=4, seed=29)
        header = ["a", "b"]
        data = [[values[i], values[i + 1]] for i in range(0, 40, 2)]
        with ShardedTableExecutor(
            {"a": phone_engine, "b": phone_engine}, header, workers=2, chunk_size=4
        ) as executor:
            encoded = "".join(
                chunk for chunk, _, _, _ in executor.run_chunks(_csv_lines(header, data))
            )
        rows = list(csv.DictReader(io.StringIO(executor.header_text() + encoded)))
        assert set(rows[0]) == {"a", "b", "a_transformed", "b_transformed"}
        for source, row in zip(data, rows):
            assert row["a_transformed"] == phone_engine.run_one(source[0]).output
            assert row["b_transformed"] == phone_engine.run_one(source[1]).output

    def test_jsonl_chunks(self, phone_engine):
        header = ["id", "phone"]
        data = [["1", "(906) 555-1234"], ["2", "906.555.9999"]]
        with ShardedTableExecutor(
            {"phone": phone_engine}, header, out_format="jsonl", workers=1
        ) as executor:
            assert executor.header_text() == ""
            encoded, rows, flagged, _ = next(executor.run_chunks(_csv_lines(header, data)))
        assert rows == 2 and flagged == 0
        objects = [json.loads(line) for line in encoded.splitlines()]
        assert objects[0] == {
            "id": "1",
            "phone": "(906) 555-1234",
            "phone_transformed": "906-555-1234",
        }

    def test_quoted_embedded_newlines_survive_chunking(self, phone_engine):
        header = ["note", "phone"]
        data = [['line one\nline two', "(906) 555-1234"]] * 7
        lines = _csv_lines(header, data)
        assert len(lines) > len(data)  # records really span physical lines
        with ShardedTableExecutor(
            {"phone": phone_engine}, header, workers=1, chunk_size=1
        ) as executor:
            chunks = list(executor.run_chunks(lines))
        assert sum(rows for _, rows, _, _ in chunks) == 7
        decoded = list(
            csv.DictReader(
                io.StringIO(executor.header_text() + "".join(chunk for chunk, _, _, _ in chunks))
            )
        )
        assert all(row["note"] == "line one\nline two" for row in decoded)
        assert all(row["phone_transformed"] == "906-555-1234" for row in decoded)

    def test_stray_quotes_in_unquoted_cells_are_data_not_delimiters(self, phone_engine):
        # A lone inch-mark in an unquoted cell must not fool the record
        # chunker: csv treats quotes as special only at field start.
        header = ["note", "phone"]
        lines = [
            '6" nail,"(906) 555-1234"\n',
            '"begin\nend",906.555.9999\n',
            'a,906-555-0000\n',
        ]
        with ShardedTableExecutor(
            {"phone": phone_engine}, header, workers=1, chunk_size=1
        ) as executor:
            chunks = list(executor.run_chunks(list(lines)))
            encoded = executor.header_text() + "".join(chunk for chunk, _, _, _ in chunks)
        decoded = list(csv.DictReader(io.StringIO(encoded)))
        assert [row["note"] for row in decoded] == ['6" nail', "begin\nend", "a"]
        assert [row["phone_transformed"] for row in decoded] == [
            "906-555-1234",
            "906-555-9999",
            "906-555-0000",
        ]

    def test_lone_stray_quote_does_not_latch_chunking_open(self, phone_engine):
        # A single odd-quote line must not glue the rest of the file
        # into one unbounded chunk.
        lines = ['6" nail,906.555.9999\n'] + ['a,906-555-0000\n'] * 9
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["note", "phone"], workers=1, chunk_size=2
        ) as executor:
            chunks = list(executor.run_chunks(lines))
        assert len(chunks) == 5  # 10 rows at chunk_size=2, no latching
        assert sum(rows for _, rows, _, _ in chunks) == 10

    def test_ragged_row_raises_with_line_number(self, phone_engine):
        lines = ["1,734-422-8073\n", "2,906-555-1234,stray\n"]
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], source="data.csv", workers=1
        ) as executor:
            with pytest.raises(CLXError, match=r"data\.csv line 3"):
                list(executor.run_chunks(lines, first_line=2))

    def test_flagged_cells_are_counted(self, phone_engine):
        lines = ["1,N/A?!\n", "2,906.555.9999\n"]
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], workers=1
        ) as executor:
            _, rows, flagged, _ = next(executor.run_chunks(lines))
        assert rows == 2 and flagged == 1

    def test_rejects_bad_configuration(self, phone_engine):
        with pytest.raises(ValidationError):
            ShardedTableExecutor({}, ["a"])
        with pytest.raises(ValidationError, match="not found"):
            ShardedTableExecutor({"missing": phone_engine}, ["a"])
        with pytest.raises(ValidationError, match="already exists"):
            ShardedTableExecutor(
                {"a": phone_engine}, ["a", "b"], output_columns={"a": "b"}
            )
        with pytest.raises(ValidationError):
            ShardedTableExecutor({"a": phone_engine}, ["a"], out_format="xml")
        with pytest.raises(ValidationError):
            ShardedTableExecutor({"a": phone_engine}, ["a"], workers=0)
        with pytest.raises(ValidationError):
            ShardedTableExecutor({"a": phone_engine}, ["a"], chunk_size=0)

    def test_parallel_output_equals_serial_output(self, phone_engine):
        values, _ = phone_dataset(count=400, format_count=4, seed=31)
        header = ["id", "phone"]
        data = [[str(index), value] for index, value in enumerate(values)]
        lines = _csv_lines(header, data)

        def run(workers):
            with ShardedTableExecutor(
                {"phone": phone_engine}, header, workers=workers, chunk_size=16
            ) as executor:
                return "".join(chunk for chunk, _, _, _ in executor.run_chunks(list(lines)))

        assert run(1) == run(2)

    def test_dead_worker_raises_clx_error_instead_of_hanging(self, phone_engine):
        lines = ["1,734-422-8073\n"] * 20 + [_Kamikaze("2,906-555-1234\n")]
        with ShardedTableExecutor(
            {"phone": phone_engine}, ["id", "phone"], workers=2, chunk_size=4
        ) as executor:
            with pytest.raises(CLXError, match="worker process died"):
                list(executor.run_chunks(lines))


class TestSessionApplyTable:
    def test_applies_the_sessions_program_to_named_columns(self):
        raw, _ = phone_dataset(count=80, format_count=4, seed=37)
        session = CLXSession(raw)
        session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        rows = [{"phone": value, "backup": value} for value in raw[:20]]
        out = session.apply_table(rows, ["phone", "backup"])
        engine = session.engine()
        for source, row in zip(raw[:20], out):
            assert row["phone"] == engine.run_one(source).output
            assert row["backup"] == row["phone"]

    def test_single_column_shorthand_and_validation(self):
        raw, _ = phone_dataset(count=40, format_count=4, seed=41)
        session = CLXSession(raw)
        session.label_target_from_notation("<D>3'-'<D>3'-'<D>4")
        out = session.apply_table([{"phone": raw[0]}], "phone")
        assert out[0]["phone"] == session.engine().run_one(raw[0]).output
        with pytest.raises(ValidationError):
            session.apply_table([], [])
